// Tests for the HyPar framework layer: partitioning, ghost lists, runtime
// thresholds, and the engine on small clusters.
#include <gtest/gtest.h>

#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/reference_mst.hpp"
#include "hypar/engine.hpp"
#include "hypar/ghost.hpp"
#include "hypar/partition.hpp"
#include "hypar/runtime.hpp"
#include "simcluster/cluster.hpp"
#include "util/check.hpp"

namespace mnd::hypar {
namespace {

using graph::Csr;
using graph::EdgeList;
using graph::VertexId;

// ---- Partition1D -------------------------------------------------------------

TEST(PartitionTest, CoversAllVertices) {
  const Csr g = Csr::from_edge_list(graph::erdos_renyi(100, 400, 2));
  const Partition1D part = partition_by_degree(g, 4);
  EXPECT_EQ(part.parts(), 4);
  EXPECT_EQ(part.begin(0), 0u);
  EXPECT_EQ(part.end(3), 100u);
  for (int p = 0; p + 1 < 4; ++p) {
    EXPECT_EQ(part.end(p), part.begin(p + 1));
  }
}

TEST(PartitionTest, OwnerConsistentWithRanges) {
  const Csr g = Csr::from_edge_list(graph::rmat(9, 2000, 3));
  const Partition1D part = partition_by_degree(g, 7);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const int o = part.owner(v);
    EXPECT_GE(v, part.begin(o));
    EXPECT_LT(v, part.end(o));
  }
}

TEST(PartitionTest, BalancesArcsNotVertices) {
  // A graph where vertex 0 holds half the arcs: degree-based partitioning
  // must give rank 0 far fewer vertices than an equal-vertex split.
  EdgeList el = graph::star_graph(1000);
  for (VertexId v = 1; v + 1 <= 1000; ++v) el.add_edge(v, v + 1, 1);
  const Csr g = Csr::from_edge_list(el);
  const Partition1D part = partition_by_degree(g, 2);
  EXPECT_LT(part.end(0) - part.begin(0), 450u);
  // Arc counts are within 2x of each other.
  const std::size_t arcs0 = g.offsets()[part.end(0)] - g.offsets()[0];
  const std::size_t arcs1 = g.num_arcs() - arcs0;
  EXPECT_LT(arcs0, 2 * arcs1 + g.num_arcs() / 4);
}

TEST(PartitionTest, SinglePart) {
  const Csr g = Csr::from_edge_list(graph::path_graph(10));
  const Partition1D part = partition_by_degree(g, 1);
  EXPECT_EQ(part.parts(), 1);
  EXPECT_EQ(part.owner(9), 0);
}

TEST(PartitionTest, MorePartsThanVertices) {
  const Csr g = Csr::from_edge_list(graph::path_graph(3));
  const Partition1D part = partition_by_degree(g, 8);
  EXPECT_EQ(part.parts(), 8);
  // All vertices covered; some ranges empty.
  int nonempty = 0;
  for (int p = 0; p < 8; ++p) {
    if (part.end(p) > part.begin(p)) ++nonempty;
  }
  EXPECT_LE(nonempty, 3);
}

TEST(PartitionTest, DeviceSplitByShare) {
  const Csr g = Csr::from_edge_list(graph::erdos_renyi(100, 500, 5));
  const VertexId mid = split_range_by_share(g, 0, 100, 0.5);
  const std::size_t arcs_cpu = g.offsets()[mid] - g.offsets()[0];
  EXPECT_NEAR(static_cast<double>(arcs_cpu) / g.num_arcs(), 0.5, 0.1);
  EXPECT_EQ(split_range_by_share(g, 0, 100, 0.0), 100u);  // all CPU
  EXPECT_EQ(split_range_by_share(g, 20, 20, 0.5), 20u);   // empty range
}

// ---- GhostList ------------------------------------------------------------------

TEST(GhostTest, BuildsGhostEdgesPerNeighbor) {
  // Path 0-1-2-3-4-5, split as [0,3) and [3,6): one cut edge (2,3).
  const Csr g = Csr::from_edge_list(graph::path_graph(6));
  const Partition1D part({0, 3, 6});
  const GhostList g0 = build_ghost_list(g, part, 0);
  const GhostList g1 = build_ghost_list(g, part, 1);
  EXPECT_EQ(g0.total_ghost_edges(), 1u);
  EXPECT_EQ(g1.total_ghost_edges(), 1u);
  EXPECT_EQ(g0.neighbor_ranks(), std::vector<int>{1});
  ASSERT_NE(g0.edges_to(1), nullptr);
  EXPECT_EQ((*g0.edges_to(1))[0].boundary, 2u);
  EXPECT_EQ((*g0.edges_to(1))[0].ghost, 3u);
  EXPECT_EQ(g0.num_boundary_vertices(), 1u);
}

TEST(GhostTest, NoGhostsWithinOnePartition) {
  const Csr g = Csr::from_edge_list(graph::complete_graph(8));
  const Partition1D part({0, 8});
  EXPECT_EQ(build_ghost_list(g, part, 0).total_ghost_edges(), 0u);
}

TEST(GhostTest, BoundaryExchangeCountsMatch) {
  const Csr g = Csr::from_edge_list(graph::erdos_renyi(64, 400, 9));
  sim::ClusterConfig cfg;
  cfg.num_ranks = 4;
  sim::run_cluster(cfg, [&](sim::Communicator& comm) {
    const Partition1D part = partition_by_degree(g, 4);
    const GhostList mine = build_ghost_list(g, part, comm.rank());
    // Phased exchange with a tiny phase size exercises chunking.
    const std::size_t learned =
        exchange_boundary_vertices(comm, mine, /*phase_entries=*/8);
    // What I learn is the set of remote boundary vertices adjacent to me,
    // which equals my distinct ghost vertices.
    mnd::FlatHashSet<VertexId> ghosts;
    for (int r : mine.neighbor_ranks()) {
      for (const auto& e : *mine.edges_to(r)) ghosts.insert(e.ghost);
    }
    EXPECT_EQ(learned, ghosts.size());
  });
}

// ---- runtime thresholds -------------------------------------------------------------

TEST(RuntimeTest, MergeConvergenceOnSmallData) {
  RuntimeThresholds t;
  t.group_merge_edge_threshold = 100;
  MergeConvergence conv(t);
  EXPECT_TRUE(conv.should_merge_to_leader(50, 0));
}

TEST(RuntimeTest, MergeConvergenceOnStalling) {
  RuntimeThresholds t;
  t.group_merge_edge_threshold = 10;
  t.min_group_reduction = 0.10;
  MergeConvergence conv(t);
  EXPECT_FALSE(conv.should_merge_to_leader(1000, 0));
  EXPECT_FALSE(conv.should_merge_to_leader(500, 1));   // halved: keep going
  EXPECT_TRUE(conv.should_merge_to_leader(480, 2));    // only 4% reduction
}

TEST(RuntimeTest, MergeConvergenceOnRoundCap) {
  RuntimeThresholds t;
  t.group_merge_edge_threshold = 1;
  t.min_group_reduction = 0.0;
  t.max_ring_rounds = 3;
  MergeConvergence conv(t);
  EXPECT_FALSE(conv.should_merge_to_leader(1000, 0));
  EXPECT_TRUE(conv.should_merge_to_leader(900, 3));
}

// ---- engine ---------------------------------------------------------------------------

void expect_engine_optimal(const EdgeList& el, int ranks,
                           EngineOptions opts = {}) {
  const Csr g = Csr::from_edge_list(el);
  sim::ClusterConfig cfg;
  cfg.num_ranks = ranks;
  std::vector<graph::EdgeId> forest;
  sim::run_cluster(cfg, [&](sim::Communicator& comm) {
    BoruvkaKernel kernel;
    auto result = run_engine(comm, g, kernel, opts);
    if (comm.rank() == 0) forest = std::move(result.forest_edges);
  });
  const auto validation = graph::validate_spanning_forest(el, forest);
  EXPECT_TRUE(validation.ok) << validation.error;
}

TEST(EngineTest, GroupSizeTwo) {
  EngineOptions opts;
  opts.group_size = 2;
  expect_engine_optimal(graph::erdos_renyi(300, 1200, 21), 8, opts);
}

TEST(EngineTest, GroupSizeEight) {
  EngineOptions opts;
  opts.group_size = 8;
  expect_engine_optimal(graph::erdos_renyi(300, 1200, 21), 8, opts);
}

TEST(EngineTest, GroupSizeLargerThanRanks) {
  EngineOptions opts;
  opts.group_size = 16;
  expect_engine_optimal(graph::erdos_renyi(200, 800, 23), 3, opts);
}

TEST(EngineTest, NonPowerOfTwoRanks) {
  expect_engine_optimal(graph::rmat(9, 3000, 25), 5);
  expect_engine_optimal(graph::rmat(9, 3000, 25), 7);
  expect_engine_optimal(graph::rmat(9, 3000, 25), 13);
}

TEST(EngineTest, RejectsBorderEdgeExceptionForMst) {
  EngineOptions opts;
  opts.excp = ExcpCond::BorderEdge;
  const Csr g = Csr::from_edge_list(graph::path_graph(8));
  sim::ClusterConfig cfg;
  cfg.num_ranks = 2;
  EXPECT_THROW(sim::run_cluster(cfg,
                                [&](sim::Communicator& comm) {
                                  BoruvkaKernel kernel;
                                  (void)run_engine(comm, g, kernel, opts);
                                }),
               CheckFailure);
}

TEST(EngineTest, TraceIsPopulated) {
  const EdgeList el = graph::erdos_renyi(400, 1600, 29);
  const Csr g = Csr::from_edge_list(el);
  sim::ClusterConfig cfg;
  cfg.num_ranks = 4;
  sim::run_cluster(cfg, [&](sim::Communicator& comm) {
    BoruvkaKernel kernel;
    const auto result = run_engine(comm, g, kernel, {});
    EXPECT_GT(result.trace.levels_participated, 0);
    EXPECT_GT(result.trace.ghost_edges, 0u);
    EXPECT_GT(result.trace.boundary_vertices, 0u);
    EXPECT_GT(result.trace.components_after_level0, 0u);
    EXPECT_GT(result.trace.peak_memory_bytes, 0u);
  });
}

TEST(EngineTest, MemoryBoundRespectedDuringMerge) {
  // PROPERTY (paper §3.4): merged data on a rank never exceeds capacity.
  // Give each rank a capacity comfortably above its share; the run must
  // complete without tripping the tracker, proving intermediate merges
  // stayed within bounds.
  const EdgeList el = graph::erdos_renyi(600, 3000, 31);
  const Csr g = Csr::from_edge_list(el);
  sim::ClusterConfig cfg;
  cfg.num_ranks = 8;
  cfg.rank_memory_bytes = 2 << 20;  // 2 MB per rank; plenty but finite
  std::vector<graph::EdgeId> forest;
  sim::run_cluster(cfg, [&](sim::Communicator& comm) {
    BoruvkaKernel kernel;
    auto result = run_engine(comm, g, kernel, {});
    EXPECT_LE(result.trace.peak_memory_bytes, cfg.rank_memory_bytes);
    if (comm.rank() == 0) forest = std::move(result.forest_edges);
  });
  EXPECT_TRUE(graph::validate_spanning_forest(el, forest).ok);
}

TEST(EngineTest, ImpossibleMemoryBoundThrows) {
  const EdgeList el = graph::erdos_renyi(500, 4000, 33);
  const Csr g = Csr::from_edge_list(el);
  sim::ClusterConfig cfg;
  cfg.num_ranks = 2;
  cfg.rank_memory_bytes = 512;  // cannot even hold the partition
  EXPECT_THROW(sim::run_cluster(cfg,
                                [&](sim::Communicator& comm) {
                                  BoruvkaKernel kernel;
                                  (void)run_engine(comm, g, kernel, {});
                                }),
               CheckFailure);
}

}  // namespace
}  // namespace mnd::hypar
