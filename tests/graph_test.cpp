// Unit tests for src/graph: edge list, CSR, generators, IO, traversal,
// dataset stand-ins.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/csr.hpp"
#include "graph/datasets.hpp"
#include "graph/edge_list.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/traversal.hpp"
#include "util/check.hpp"

namespace mnd::graph {
namespace {

// ---- EdgeList ---------------------------------------------------------------

TEST(EdgeListTest, AddEdgeGrowsVertices) {
  EdgeList el;
  el.add_edge(3, 7, 5);
  EXPECT_EQ(el.num_vertices(), 8u);
  EXPECT_EQ(el.num_edges(), 1u);
  EXPECT_EQ(el.edge(0).w, 5u);
}

TEST(EdgeListTest, CanonicalizeDropsSelfLoops) {
  EdgeList el(4);
  el.add_edge(0, 0, 1);
  el.add_edge(1, 2, 2);
  el.canonicalize();
  EXPECT_EQ(el.num_edges(), 1u);
  EXPECT_EQ(el.edge(0).u, 1u);
}

TEST(EdgeListTest, CanonicalizeKeepsLightestParallel) {
  EdgeList el(3);
  el.add_edge(0, 1, 9);
  el.add_edge(1, 0, 4);  // same undirected edge, lighter
  el.add_edge(1, 2, 7);
  el.canonicalize();
  EXPECT_EQ(el.num_edges(), 2u);
  EXPECT_EQ(el.edge(0).w, 4u);
}

TEST(EdgeListTest, CanonicalizeReassignsDenseIds) {
  EdgeList el(5);
  el.add_edge(0, 0, 1);
  el.add_edge(0, 1, 1);
  el.add_edge(2, 3, 1);
  el.canonicalize();
  for (std::size_t i = 0; i < el.num_edges(); ++i) {
    EXPECT_EQ(el.edge(i).id, i);
  }
}

TEST(EdgeListTest, RandomizeWeightsDeterministic) {
  EdgeList a = path_graph(50);
  EdgeList b = path_graph(50);
  a.randomize_weights(99, 1, 1000);
  b.randomize_weights(99, 1, 1000);
  EXPECT_EQ(a.total_weight(), b.total_weight());
  a.randomize_weights(100, 1, 1000);
  EXPECT_NE(a.total_weight(), b.total_weight());
}

// ---- CSR ---------------------------------------------------------------------

TEST(CsrTest, BothDirectionsPresent) {
  EdgeList el(3);
  el.add_edge(0, 1, 5);
  el.add_edge(1, 2, 7);
  const Csr g = Csr::from_edge_list(el);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.num_arcs(), 4u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.adjacency(0).size(), 1u);
  EXPECT_EQ(g.adjacency(0)[0].to, 1u);
  EXPECT_EQ(g.adjacency(0)[0].w, 5u);
}

TEST(CsrTest, SharedEdgeIds) {
  EdgeList el(2);
  const EdgeId id = el.add_edge(0, 1, 3);
  const Csr g = Csr::from_edge_list(el);
  EXPECT_EQ(g.adjacency(0)[0].id, id);
  EXPECT_EQ(g.adjacency(1)[0].id, id);
}

TEST(CsrTest, EdgeLookupRoundTrip) {
  const EdgeList el = erdos_renyi(100, 400, 5);
  const Csr g = Csr::from_edge_list(el);
  for (std::size_t i = 0; i < el.num_edges(); ++i) {
    const WeightedEdge orig = el.edge(i);
    const WeightedEdge got = g.edge(i);
    EXPECT_EQ(got.w, orig.w);
    EXPECT_EQ(got.id, orig.id);
    const bool same = (got.u == orig.u && got.v == orig.v) ||
                      (got.u == orig.v && got.v == orig.u);
    EXPECT_TRUE(same);
  }
}

TEST(CsrTest, SkipsSelfLoops) {
  EdgeList el(2);
  el.add_edge(0, 0, 1);
  el.add_edge(0, 1, 2);
  const Csr g = Csr::from_edge_list(el);
  EXPECT_EQ(g.num_arcs(), 2u);
}

TEST(CsrTest, AdjacencySortedByNeighbor) {
  const EdgeList el = erdos_renyi(50, 300, 8);
  const Csr g = Csr::from_edge_list(el);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto adj = g.adjacency(v);
    for (std::size_t i = 1; i < adj.size(); ++i) {
      EXPECT_LE(adj[i - 1].to, adj[i].to);
    }
  }
}

TEST(CsrTest, EmptyGraph) {
  EdgeList el(0);
  const Csr g = Csr::from_edge_list(el);
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

// ---- generators -----------------------------------------------------------------

TEST(GeneratorsTest, ErdosRenyiMeetsTarget) {
  const EdgeList el = erdos_renyi(200, 900, 1);
  EXPECT_EQ(el.num_edges(), 900u);
  EXPECT_EQ(el.num_vertices(), 200u);
  for (const auto& e : el.edges()) EXPECT_NE(e.u, e.v);
}

TEST(GeneratorsTest, ErdosRenyiDeterministic) {
  const EdgeList a = erdos_renyi(100, 300, 5);
  const EdgeList b = erdos_renyi(100, 300, 5);
  EXPECT_EQ(a.edges(), b.edges());
}

TEST(GeneratorsTest, RmatSkewedDegrees) {
  const EdgeList el = rmat(12, 30000, 3);
  const Csr g = Csr::from_edge_list(el);
  const DegreeStats stats = degree_stats(g);
  EXPECT_GT(stats.max, static_cast<std::size_t>(stats.average * 10));
}

TEST(GeneratorsTest, WebGraphLocality) {
  WebGraphParams p;
  p.n = 1 << 13;
  p.target_edges = 80000;
  p.seed = 4;
  const EdgeList el = web_graph(p);
  EXPECT_GT(el.num_edges(), 70000u);
  // Most edges should connect nearby ids.
  std::size_t near = 0;
  for (const auto& e : el.edges()) {
    const auto d = e.u > e.v ? e.u - e.v : e.v - e.u;
    if (d < p.n / 16) ++near;
  }
  EXPECT_GT(static_cast<double>(near) / static_cast<double>(el.num_edges()),
            0.6);
}

TEST(GeneratorsTest, WebGraphHubSkew) {
  WebGraphParams p;
  p.n = 1 << 12;
  p.target_edges = 40000;
  p.hub_fraction = 0.2;
  p.num_hubs = 8;
  p.seed = 6;
  const Csr g = Csr::from_edge_list(web_graph(p));
  const DegreeStats stats = degree_stats(g);
  EXPECT_GT(stats.max, 500u);
}

TEST(GeneratorsTest, RoadGridShape) {
  const EdgeList el = road_grid(30, 20, 0.05, 0.1, 9);
  const Csr g = Csr::from_edge_list(el);
  EXPECT_EQ(g.num_vertices(), 600u);
  const DegreeStats stats = degree_stats(g);
  EXPECT_LE(stats.max, 8u);
  EXPECT_GT(estimate_diameter(g), 20u);
}

TEST(GeneratorsTest, FixtureShapes) {
  EXPECT_EQ(path_graph(10).num_edges(), 9u);
  EXPECT_EQ(cycle_graph(10).num_edges(), 10u);
  EXPECT_EQ(star_graph(6).num_edges(), 6u);
  EXPECT_EQ(complete_graph(6).num_edges(), 15u);
  const EdgeList tc = two_cliques_bridge(5, 3);
  EXPECT_EQ(tc.num_edges(), 2u * 10u + 1u);
  EXPECT_EQ(tc.num_vertices(), 10u);
}

TEST(GeneratorsTest, PreferentialAttachmentDegrees) {
  const EdgeList el = preferential_attachment(500, 3, 12);
  const Csr g = Csr::from_edge_list(el);
  const DegreeStats stats = degree_stats(g);
  EXPECT_GE(stats.max, 20u);  // hubs emerge
  EXPECT_EQ(stats.isolated, 0u);
}

TEST(GeneratorsTest, RelabelByBfsPreservesStructure) {
  const EdgeList el = erdos_renyi(300, 1000, 3);
  const EdgeList relabeled = relabel_by_bfs(el);
  EXPECT_EQ(relabeled.num_vertices(), el.num_vertices());
  EXPECT_EQ(relabeled.num_edges(), el.num_edges());
  // Connectivity structure is preserved (component count equal).
  std::vector<VertexId> l1;
  std::vector<VertexId> l2;
  EXPECT_EQ(connected_components(Csr::from_edge_list(el), &l1),
            connected_components(Csr::from_edge_list(relabeled), &l2));
}

// ---- traversal -------------------------------------------------------------------

TEST(TraversalTest, BfsDistancesOnPath) {
  const Csr g = Csr::from_edge_list(path_graph(6));
  const auto dist = bfs_distances(g, 0);
  for (VertexId v = 0; v < 6; ++v) EXPECT_EQ(dist[v], v);
}

TEST(TraversalTest, BfsUnreachable) {
  EdgeList el(4);
  el.add_edge(0, 1, 1);
  el.add_edge(2, 3, 1);
  const Csr g = Csr::from_edge_list(el);
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], kUnreached);
}

TEST(TraversalTest, ConnectedComponentsCount) {
  EdgeList el(9);
  el.add_edge(0, 1, 1);
  el.add_edge(1, 2, 1);
  el.add_edge(3, 4, 1);
  // 5..8 isolated
  const Csr g = Csr::from_edge_list(el);
  std::vector<VertexId> labels;
  EXPECT_EQ(connected_components(g, &labels), 6u);
  EXPECT_EQ(labels[0], labels[2]);
  EXPECT_NE(labels[0], labels[3]);
}

TEST(TraversalTest, DiameterOfPath) {
  const Csr g = Csr::from_edge_list(path_graph(40));
  EXPECT_EQ(estimate_diameter(g), 39u);
}

TEST(TraversalTest, DegreeStats) {
  const Csr g = Csr::from_edge_list(star_graph(5));
  const DegreeStats stats = degree_stats(g);
  EXPECT_EQ(stats.max, 5u);
  EXPECT_EQ(stats.min, 1u);
  EXPECT_NEAR(stats.average, 10.0 / 6.0, 1e-9);
  EXPECT_EQ(stats.isolated, 0u);
}

// ---- IO ----------------------------------------------------------------------------

TEST(IoTest, TextRoundTrip) {
  const EdgeList el = erdos_renyi(40, 100, 2);
  std::stringstream ss;
  write_edge_list_text(el, ss);
  const EdgeList back = read_edge_list_text(ss);
  EXPECT_EQ(back.num_edges(), el.num_edges());
  EXPECT_EQ(back.total_weight(), el.total_weight());
}

TEST(IoTest, TextCommentsAndDefaults) {
  std::stringstream ss("# comment\nc another\n0 1\n1 2 9\n");
  const EdgeList el = read_edge_list_text(ss);
  EXPECT_EQ(el.num_edges(), 2u);
  EXPECT_EQ(el.edge(0).w, 1u);  // default weight
  EXPECT_EQ(el.edge(1).w, 9u);
}

TEST(IoTest, TextRejectsGarbageLine) {
  std::stringstream ss("0 1 5\nnot an edge\n");
  EXPECT_THROW(read_edge_list_text(ss), CheckFailure);
}

TEST(IoTest, TextRejectsTrailingTokens) {
  std::stringstream ss("0 1 5 99\n");
  EXPECT_THROW(read_edge_list_text(ss), CheckFailure);
}

TEST(IoTest, TextRejectsMissingEndpoint) {
  std::stringstream ss("0 1 5\n7\n");
  EXPECT_THROW(read_edge_list_text(ss), CheckFailure);
}

TEST(IoTest, TextRejectsOutOfRangeValues) {
  std::stringstream ss("0 99999999999 1\n");
  EXPECT_THROW(read_edge_list_text(ss), CheckFailure);
}

TEST(IoTest, TextErrorNamesTheLine) {
  std::stringstream ss("# header\n0 1 5\nbroken !\n");
  try {
    read_edge_list_text(ss);
    FAIL() << "garbage accepted";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(IoTest, TextAcceptsBlankAndWhitespaceLines) {
  std::stringstream ss("\n   \n0 1 5\n\t\n");
  EXPECT_EQ(read_edge_list_text(ss).num_edges(), 1u);
}

TEST(IoTest, DimacsRoundTrip) {
  EdgeList el(5);
  el.add_edge(0, 1, 10);
  el.add_edge(2, 4, 20);
  std::stringstream ss;
  write_dimacs(el, ss);
  const EdgeList back = read_dimacs(ss);
  EXPECT_EQ(back.num_vertices(), 5u);
  EXPECT_EQ(back.num_edges(), 2u);
  EXPECT_EQ(back.total_weight(), 30u);
}

TEST(IoTest, BinaryRoundTrip) {
  const EdgeList el = rmat(8, 500, 7);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(el, ss);
  const EdgeList back = read_binary(ss);
  EXPECT_EQ(back.num_vertices(), el.num_vertices());
  EXPECT_EQ(back.edges(), el.edges());
}

TEST(IoTest, BinaryRejectsBadMagic) {
  std::stringstream ss("not-a-graph-file-at-all");
  EXPECT_THROW(read_binary(ss), CheckFailure);
}

// ---- datasets ------------------------------------------------------------------------

TEST(DatasetsTest, AllNamesGenerate) {
  for (const auto& name : dataset_names()) {
    const EdgeList el = make_dataset(name, 0.02);
    EXPECT_GT(el.num_vertices(), 0u) << name;
    EXPECT_GT(el.num_edges(), 0u) << name;
  }
}

TEST(DatasetsTest, SpecsMatchPaperTable2Order) {
  const auto& specs = paper_datasets();
  ASSERT_EQ(specs.size(), 6u);
  EXPECT_EQ(specs[0].name, "road_usa");
  EXPECT_EQ(specs[5].name, "uk-2007");
  EXPECT_NEAR(specs[5].paper_edges_b, 6.60, 1e-9);
}

TEST(DatasetsTest, Deterministic) {
  const EdgeList a = make_dataset("arabic-2005", 0.05, 77);
  const EdgeList b = make_dataset("arabic-2005", 0.05, 77);
  EXPECT_EQ(a.edges(), b.edges());
}

TEST(DatasetsTest, RoadFamilyHasRoadShape) {
  const EdgeList el = make_dataset("road_usa", 0.2);
  const Csr g = Csr::from_edge_list(el);
  const DegreeStats stats = degree_stats(g);
  EXPECT_LE(stats.max, 9u);  // paper: max degree 9
  EXPECT_LT(stats.average, 4.0);
}

TEST(DatasetsTest, WebFamiliesAreSkewed) {
  const Csr g = Csr::from_edge_list(make_dataset("sk-2005", 0.1));
  const DegreeStats stats = degree_stats(g);
  EXPECT_GT(stats.max, static_cast<std::size_t>(stats.average * 5));
}

TEST(DatasetsTest, UnknownNameThrows) {
  EXPECT_THROW(make_dataset("no-such-graph"), CheckFailure);
}

TEST(DatasetsTest, RejectsBadScale) {
  EXPECT_THROW(make_dataset("road_usa", 0.0), CheckFailure);
  EXPECT_THROW(make_dataset("road_usa", 1.5), CheckFailure);
}

}  // namespace
}  // namespace mnd::graph

// Appended: Matrix Market IO (the UFL Sparse Matrix Collection format).
namespace mnd::graph {
namespace {

TEST(IoTest, MatrixMarketRoundTrip) {
  const EdgeList el = erdos_renyi(50, 200, 9);
  std::stringstream ss;
  write_matrix_market(el, ss);
  const EdgeList back = read_matrix_market(ss);
  EXPECT_EQ(back.num_vertices(), el.num_vertices());
  EXPECT_EQ(back.num_edges(), el.num_edges());
  EXPECT_EQ(back.total_weight(), el.total_weight());
}

TEST(IoTest, MatrixMarketPatternField) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate pattern symmetric\n"
      "% a comment\n"
      "4 4 3\n"
      "2 1\n"
      "3 1\n"
      "4 3\n");
  const EdgeList el = read_matrix_market(ss);
  EXPECT_EQ(el.num_vertices(), 4u);
  EXPECT_EQ(el.num_edges(), 3u);
  for (const auto& e : el.edges()) EXPECT_EQ(e.w, 1u);
}

TEST(IoTest, MatrixMarketRealValuesClamped) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real general\n"
      "3 3 3\n"
      "1 2 -5.7\n"
      "2 3 0.0\n"
      "1 3 42.9\n");
  const EdgeList el = read_matrix_market(ss);
  ASSERT_EQ(el.num_edges(), 3u);
  // magnitudes kept, zero clamped to 1
  WeightSum total = el.total_weight();
  EXPECT_EQ(total, 5u + 1u + 42u);
}

TEST(IoTest, MatrixMarketSelfLoopsAndDuplicatesCollapse) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate integer general\n"
      "3 3 4\n"
      "1 1 9\n"
      "1 2 7\n"
      "2 1 3\n"
      "2 3 4\n");
  const EdgeList el = read_matrix_market(ss);
  EXPECT_EQ(el.num_edges(), 2u);  // loop dropped, duplicate collapsed
  EXPECT_EQ(el.total_weight(), 3u + 4u);
}

TEST(IoTest, MatrixMarketRejectsGarbage) {
  std::stringstream ss("this is not a matrix\n1 2 3\n");
  EXPECT_THROW(read_matrix_market(ss), CheckFailure);
}

}  // namespace
}  // namespace mnd::graph
