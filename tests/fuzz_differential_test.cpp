// Differential fuzzing: sweep seeded random graphs through BOTH engines
// (HyPar MND-MST and the BSP baseline) with the phase-boundary validators
// enabled, and diff every result against exact Kruskal. The sweep varies
// the axes that stress distinct failure modes:
//   * scale / density      — contraction depth, merge-tree height
//   * weight range         — narrow ranges force ties, exercising the
//                            (weight, id) total order everywhere
//   * rank / worker count  — partition boundaries, ghost symmetry, ring
//                            merge schedules
//   * CPU/GPU split        — the device-split indComp path and its
//                            frozen-component accounting
// Plus a negative test: an engine mutant that skips the
// EXCPT_BORDER_VERTEX freeze must be caught by the cut-property validator.
#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bsp/msf.hpp"
#include "graph/generators.hpp"
#include "graph/mndg.hpp"
#include "graph/reference_mst.hpp"
#include "mst/mnd_mst.hpp"
#include "simcluster/fault.hpp"
#include "validate/invariants.hpp"

namespace mnd {
namespace {

struct FuzzConfig {
  graph::VertexId vertices;
  std::size_t edges;
  std::uint64_t seed;
  graph::Weight weight_lo;
  graph::Weight weight_hi;  // lo==hi-1 etc. force heavy tie-breaking
  int ranks;
  bool gpu;
};

std::string describe(const FuzzConfig& c) {
  return "n=" + std::to_string(c.vertices) + " m=" + std::to_string(c.edges) +
         " seed=" + std::to_string(c.seed) + " w=[" +
         std::to_string(c.weight_lo) + "," + std::to_string(c.weight_hi) +
         "] ranks=" + std::to_string(c.ranks) + (c.gpu ? " gpu" : " cpu");
}

graph::EdgeList make_graph(const FuzzConfig& c) {
  graph::EdgeList el = graph::erdos_renyi(c.vertices, c.edges, c.seed);
  el.randomize_weights(c.seed * 7919 + 13, c.weight_lo, c.weight_hi);
  return el;
}

/// The sweep grid: 3 scales x 2 densities x 3 weight ranges x 4 rank
/// counts x 2 device splits = 144 configs; the HyPar engine runs all of
/// them and BSP the CPU half, so 216 validated engine runs total.
std::vector<FuzzConfig> sweep_grid() {
  std::vector<FuzzConfig> configs;
  std::uint64_t seed = 1;
  for (graph::VertexId n : {64u, 192u, 512u}) {
    for (double density : {1.5, 4.0}) {
      for (auto [lo, hi] : {std::pair<graph::Weight, graph::Weight>{1, 3},
                            {1, 64},
                            {1, 1'000'000}}) {
        for (int ranks : {2, 3, 5, 8}) {
          for (bool gpu : {false, true}) {
            FuzzConfig c;
            c.vertices = n;
            c.edges = static_cast<std::size_t>(density * n);
            c.seed = seed++;
            c.weight_lo = lo;
            c.weight_hi = hi;
            c.ranks = ranks;
            c.gpu = gpu;
            configs.push_back(c);
          }
        }
      }
    }
  }
  return configs;
}

TEST(FuzzDifferential, HyparEngineMatchesKruskalAcrossSweep) {
  for (const FuzzConfig& c : sweep_grid()) {
    SCOPED_TRACE(describe(c));
    const graph::EdgeList el = make_graph(c);
    const graph::MstResult ref = graph::kruskal_mst(el);

    mst::MndMstOptions opts;
    opts.num_nodes = c.ranks;
    opts.validate = true;
    opts.engine.use_gpu = c.gpu;
    if (c.gpu) opts.engine.gpu_min_edges = 0;  // engage the split even tiny
    const mst::MndMstReport report = mst::run_mnd_mst(el, opts);

    EXPECT_EQ(report.forest.total_weight, ref.total_weight);
    EXPECT_EQ(report.forest.edges.size(), ref.edges.size());
    EXPECT_TRUE(report.validation.ok())
        << report.validation.failures().front().check << ": "
        << report.validation.failures().front().detail;
    EXPECT_GT(report.validation.checks_run(), 0u);
  }
}

TEST(FuzzDifferential, BspEngineMatchesKruskalAcrossSweep) {
  for (const FuzzConfig& c : sweep_grid()) {
    if (c.gpu) continue;  // the BSP baseline is CPU-only by construction
    SCOPED_TRACE(describe(c));
    const graph::EdgeList el = make_graph(c);
    const graph::MstResult ref = graph::kruskal_mst(el);

    bsp::BspOptions opts;
    opts.num_workers = c.ranks;
    opts.validate = true;
    // Alternate the partitioning and combining axes by seed so both code
    // paths stay covered without doubling the sweep.
    opts.partitioning = (c.seed % 2 == 0) ? bsp::BspPartitioning::Hash
                                          : bsp::BspPartitioning::Range;
    opts.message_combining = c.seed % 3 != 0;
    const bsp::BspMsfReport report = bsp::run_bsp_msf(el, opts);

    EXPECT_EQ(report.forest.total_weight, ref.total_weight);
    EXPECT_EQ(report.forest.edges.size(), ref.edges.size());
    EXPECT_TRUE(report.validation.ok())
        << report.validation.failures().front().check << ": "
        << report.validation.failures().front().detail;
    EXPECT_GT(report.validation.checks_run(), 0u);
  }
}

TEST(FuzzDifferential, BothEnginesAgreeOnTieHeavyGraphs) {
  // All-equal weights: the forest is determined purely by the id
  // tie-break, so both engines must produce the exact same edge set.
  for (std::uint64_t seed : {11u, 12u, 13u, 14u, 15u}) {
    FuzzConfig c{256, 1024, seed, 5, 5, 4, false};
    SCOPED_TRACE(describe(c));
    const graph::EdgeList el = make_graph(c);

    mst::MndMstOptions hopts;
    hopts.num_nodes = c.ranks;
    hopts.validate = true;
    const auto hreport = mst::run_mnd_mst(el, hopts);

    bsp::BspOptions bopts;
    bopts.num_workers = c.ranks;
    bopts.validate = true;
    const auto breport = bsp::run_bsp_msf(el, bopts);

    EXPECT_TRUE(hreport.validation.ok());
    EXPECT_TRUE(breport.validation.ok());
    EXPECT_EQ(hreport.forest.edges, breport.forest.edges)
        << "engines disagree under pure id tie-breaking";
  }
}

TEST(FuzzDifferential, SkipBorderFreezeMutantIsCaughtByCutProperty) {
  // Negative control: disable the EXCPT_BORDER_VERTEX freeze (the paper's
  // §3.2 safety rule). Components whose lightest edge is a cut edge then
  // contract along a heavier internal edge — a cut-property violation the
  // validator must flag. Swept over several graphs so the conclusion does
  // not hinge on one partition layout.
  int caught = 0;
  for (std::uint64_t seed : {21u, 22u, 23u, 24u}) {
    FuzzConfig c{128, 512, seed, 1, 1'000'000, 4, false};
    SCOPED_TRACE(describe(c));
    const graph::EdgeList el = make_graph(c);
    const graph::MstResult ref = graph::kruskal_mst(el);

    mst::MndMstOptions opts;
    opts.num_nodes = c.ranks;
    opts.validate = true;
    opts.engine.fault = mst::BoruvkaOptions::Fault::kSkipBorderFreeze;
    const mst::MndMstReport report = mst::run_mnd_mst(el, opts);

    if (report.validation.failed("cut_property")) ++caught;
    // The mutant commits non-MSF edges, so the weight must drift too —
    // and the validator's weight check must agree with the direct diff.
    if (report.forest.total_weight != ref.total_weight) {
      EXPECT_TRUE(report.validation.failed("cut_property") ||
                  report.validation.failed("total_weight"));
    }
  }
  EXPECT_GT(caught, 0)
      << "skip-border-freeze mutant was never flagged by cut_property";
}

TEST(FuzzDifferential, FaultInjectedRunsMatchFaultFreeAcrossSweep) {
  // Fault-injection sweep: a slice of the main grid re-run under several
  // seeded FaultPlans (message faults, a straggler, crashes incl. rank 0
  // and multiple deaths at one cut). The recovery guarantee under test:
  // any plan leaving >= 1 survivor yields the exact fault-free forest.
  std::size_t slice = 0;
  for (const FuzzConfig& c : sweep_grid()) {
    if (slice++ % 9 != 0) continue;  // every 9th config: 16 graphs x 4 plans
    // Fault ranks must exist in the cluster (validated at construction),
    // so the multi-death plan adapts to the config's rank count — and
    // still leaves a survivor.
    const std::vector<std::string> plans = {
        "seed=11,drop=0.08,dup=0.08",
        "seed=12,delay=0.2:0.0004,stall=1@0.0005x0.002",
        "seed=13,crash=0@0",
        c.ranks > 2 ? "seed=14,drop=0.03,crash=1@1,crash=2@2"
                    : "seed=14,drop=0.03,crash=1@1",
    };
    const graph::EdgeList el = make_graph(c);
    mst::MndMstOptions opts;
    opts.num_nodes = c.ranks;
    opts.validate = true;
    opts.engine.use_gpu = c.gpu;
    if (c.gpu) opts.engine.gpu_min_edges = 0;
    const mst::MndMstReport clean = mst::run_mnd_mst(el, opts);

    for (const std::string& plan : plans) {
      SCOPED_TRACE(describe(c) + " faults=" + plan);
      opts.faults = sim::FaultPlan::parse(plan);
      const mst::MndMstReport faulty = mst::run_mnd_mst(el, opts);
      EXPECT_TRUE(faulty.validation.ok())
          << faulty.validation.failures().front().check << ": "
          << faulty.validation.failures().front().detail;
      EXPECT_EQ(faulty.forest.edges, clean.forest.edges)
          << "fault injection changed the forest";
    }
  }
}

TEST(FuzzDifferential, WireModesProduceByteIdenticalForests) {
  // Wire-codec slice: the compact framing + sender-side pruning must be
  // invisible to the algorithm. A slice of the grid runs under
  // --wire=raw and --wire=compact, crossed with thread counts and a
  // lossy fault plan; every run must produce the exact same forest.
  std::size_t slice = 0;
  for (const FuzzConfig& c : sweep_grid()) {
    if (slice++ % 11 != 0) continue;  // 14 configs
    SCOPED_TRACE(describe(c));
    const graph::EdgeList el = make_graph(c);
    mst::MndMstOptions opts;
    opts.num_nodes = c.ranks;
    opts.validate = true;
    opts.engine.use_gpu = c.gpu;
    if (c.gpu) opts.engine.gpu_min_edges = 0;

    opts.engine.wire = sim::WireFormat::kRaw;
    const mst::MndMstReport raw = mst::run_mnd_mst(el, opts);
    EXPECT_TRUE(raw.validation.ok());

    opts.engine.wire = sim::WireFormat::kCompact;
    const mst::MndMstReport compact = mst::run_mnd_mst(el, opts);
    EXPECT_TRUE(compact.validation.ok());
    EXPECT_EQ(compact.forest.edges, raw.forest.edges)
        << "wire mode changed the forest";
    // Virtual time may only improve: compact ships fewer bytes through
    // the same LogGP model.
    EXPECT_LE(compact.total_seconds, raw.total_seconds);

    opts.threads = 4;
    const mst::MndMstReport threaded = mst::run_mnd_mst(el, opts);
    EXPECT_EQ(threaded.forest.edges, raw.forest.edges)
        << "threads x compact wire changed the forest";
    EXPECT_EQ(threaded.total_seconds, compact.total_seconds)
        << "threads changed compact-wire virtual time";
    opts.threads = 0;

    opts.faults = sim::FaultPlan::parse("seed=31,drop=0.05,dup=0.05");
    const mst::MndMstReport faulty = mst::run_mnd_mst(el, opts);
    EXPECT_EQ(faulty.forest.edges, raw.forest.edges)
        << "faults x compact wire changed the forest";
    opts.faults = sim::FaultPlan{};
  }
}

TEST(FuzzDifferential, FilterAndScheduleProduceByteIdenticalForests) {
  // Filter-Boruvka x adaptive-schedule slice (DESIGN.md §5g): the
  // F-lightness filter drops only provably-non-MST edges and the
  // adaptive schedule only regroups the merge hierarchy, so every
  // combination — crossed with both wire modes, thread counts, and a
  // lossy fault plan — must produce the exact forest the stock engine
  // does, and pass the live validators.
  std::size_t slice = 0;
  for (const FuzzConfig& c : sweep_grid()) {
    if (slice++ % 11 != 3) continue;  // 14 configs, offset from wire slice
    SCOPED_TRACE(describe(c));
    const graph::EdgeList el = make_graph(c);
    mst::MndMstOptions opts;
    opts.num_nodes = c.ranks;
    opts.validate = true;
    opts.engine.use_gpu = c.gpu;
    if (c.gpu) opts.engine.gpu_min_edges = 0;
    opts.engine.filter.mode = mst::FilterMode::kOff;
    opts.engine.schedule = hypar::ScheduleMode::kFixed;
    const mst::MndMstReport base = mst::run_mnd_mst(el, opts);
    EXPECT_TRUE(base.validation.ok());

    // Filter on, at two sample rates (including the tie-heavy graphs
    // where many sampled edges share a weight).
    opts.engine.filter.mode = mst::FilterMode::kOn;
    for (double rate : {0.25, 0.75}) {
      opts.engine.filter.sample_rate = rate;
      const mst::MndMstReport filtered = mst::run_mnd_mst(el, opts);
      EXPECT_TRUE(filtered.validation.ok());
      EXPECT_EQ(filtered.forest.edges, base.forest.edges)
          << "filter (rate " << rate << ") changed the forest";
    }
    opts.engine.filter.sample_rate = 0.25;

    // Adaptive schedule, with and without the filter, across wire modes.
    opts.engine.schedule = hypar::ScheduleMode::kAdaptive;
    for (const bool filter_on : {false, true}) {
      opts.engine.filter.mode =
          filter_on ? mst::FilterMode::kOn : mst::FilterMode::kOff;
      for (const sim::WireFormat wire :
           {sim::WireFormat::kRaw, sim::WireFormat::kCompact}) {
        opts.engine.wire = wire;
        const mst::MndMstReport run = mst::run_mnd_mst(el, opts);
        EXPECT_TRUE(run.validation.ok());
        EXPECT_EQ(run.forest.edges, base.forest.edges)
            << "adaptive schedule x filter=" << filter_on
            << " changed the forest";
      }
    }

    // Thread counts must not change the virtual-time results either
    // (the filter's chunked pass and the schedule's decisions are both
    // thread-count independent).
    opts.engine.filter.mode = mst::FilterMode::kOn;
    opts.engine.wire = sim::WireFormat::kCompact;
    opts.threads = 1;
    const mst::MndMstReport t1 = mst::run_mnd_mst(el, opts);
    opts.threads = 4;
    const mst::MndMstReport t4 = mst::run_mnd_mst(el, opts);
    EXPECT_EQ(t1.forest.edges, base.forest.edges);
    EXPECT_EQ(t4.forest.edges, t1.forest.edges)
        << "threads x filter x adaptive changed the forest";
    EXPECT_EQ(t4.total_seconds, t1.total_seconds)
        << "threads changed filter x adaptive virtual time";
    opts.threads = 0;

    // A lossy fault plan on top of the full stack: retransmits and
    // duplicates must not perturb the filtered forest.
    opts.faults = sim::FaultPlan::parse("seed=47,drop=0.05,dup=0.05");
    const mst::MndMstReport faulty = mst::run_mnd_mst(el, opts);
    EXPECT_EQ(faulty.forest.edges, base.forest.edges)
        << "faults x filter x adaptive changed the forest";
    opts.faults = sim::FaultPlan{};
    opts.engine.wire = sim::WireFormat::kDefault;
  }
}

TEST(FuzzDifferential, StreamedIngestionProducesIdenticalForests) {
  // Streamed-ingestion slice (docs/INGESTION.md): loading through the
  // chunked .mndg path into per-rank CSR shards — crossed with both
  // partition schemes, wire modes, and thread counts — must produce the
  // same forest edge-id set as the materialized run, with the same total
  // weight. Edge ids are insertion-order on both paths and the (w, id)
  // order makes the MSF unique, so sorted id vectors compare equal.
  std::size_t slice = 0;
  for (const FuzzConfig& c : sweep_grid()) {
    if (slice++ % 11 != 7) continue;  // 14 configs, offset from others
    SCOPED_TRACE(describe(c));
    const graph::EdgeList el = make_graph(c);
    std::stringstream bytes(std::ios::in | std::ios::out |
                            std::ios::binary);
    graph::write_mndg(el, bytes, /*chunk_edges=*/128);

    mst::MndMstOptions opts;
    opts.num_nodes = c.ranks;
    opts.validate = true;
    opts.engine.use_gpu = c.gpu;
    if (c.gpu) opts.engine.gpu_min_edges = 0;

    for (const auto scheme : {hypar::PartitionScheme::kDegree,
                              hypar::PartitionScheme::kHash}) {
      opts.partition = scheme;
      const mst::MndMstReport mat = mst::run_mnd_mst(el, opts);
      EXPECT_TRUE(mat.validation.ok());
      std::vector<graph::EdgeId> want = mat.forest.edges;
      std::sort(want.begin(), want.end());

      for (const sim::WireFormat wire :
           {sim::WireFormat::kRaw, sim::WireFormat::kCompact}) {
        opts.engine.wire = wire;
        for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
          opts.threads = threads;
          bytes.clear();
          bytes.seekg(0);
          const mst::MndMstReport streamed =
              mst::run_mnd_mst_streamed(bytes, opts);
          EXPECT_TRUE(streamed.validation.ok());
          std::vector<graph::EdgeId> got = streamed.forest.edges;
          std::sort(got.begin(), got.end());
          EXPECT_EQ(got, want)
              << "streamed forest diverged (scheme "
              << hypar::partition_scheme_name(scheme) << ", wire "
              << (wire == sim::WireFormat::kRaw ? "raw" : "compact")
              << ", threads " << threads << ")";
          EXPECT_EQ(streamed.forest.total_weight, mat.forest.total_weight);
        }
      }
      opts.threads = 0;
      opts.engine.wire = sim::WireFormat::kDefault;
    }
    opts.partition = hypar::PartitionScheme::kDefault;
  }
}

TEST(FuzzDifferential, ValidatorsCleanOnUnmutatedEngine) {
  // Control for the negative test: identical sweep, no fault injected.
  for (std::uint64_t seed : {21u, 22u, 23u, 24u}) {
    FuzzConfig c{128, 512, seed, 1, 1'000'000, 4, false};
    SCOPED_TRACE(describe(c));
    const graph::EdgeList el = make_graph(c);
    mst::MndMstOptions opts;
    opts.num_nodes = c.ranks;
    opts.validate = true;
    const mst::MndMstReport report = mst::run_mnd_mst(el, opts);
    EXPECT_TRUE(report.validation.ok());
    EXPECT_EQ(report.forest.total_weight,
              graph::kruskal_mst(el).total_weight);
  }
}

}  // namespace
}  // namespace mnd
