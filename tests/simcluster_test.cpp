// Tests for the simulated cluster: messaging, collectives, virtual-time
// causality, determinism, memory accounting.
#include <gtest/gtest.h>

#include <atomic>

#include "simcluster/cluster.hpp"
#include "simcluster/communicator.hpp"
#include "simcluster/mem_tracker.hpp"
#include "simcluster/message.hpp"
#include "util/check.hpp"

namespace mnd::sim {
namespace {

ClusterConfig config_of(int ranks) {
  ClusterConfig c;
  c.num_ranks = ranks;
  return c;
}

// ---- serialization -----------------------------------------------------------

TEST(SerializationTest, PodRoundTrip) {
  Serializer s;
  s.put<std::uint32_t>(7);
  s.put<double>(3.5);
  s.put_string("hello");
  s.put_vector(std::vector<std::uint64_t>{1, 2, 3});
  const auto bytes = s.take();
  Deserializer d(bytes);
  EXPECT_EQ(d.get<std::uint32_t>(), 7u);
  EXPECT_DOUBLE_EQ(d.get<double>(), 3.5);
  EXPECT_EQ(d.get_string(), "hello");
  EXPECT_EQ(d.get_vector<std::uint64_t>(),
            (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_TRUE(d.exhausted());
}

TEST(SerializationTest, OverrunThrows) {
  Serializer s;
  s.put<std::uint16_t>(1);
  const auto bytes = s.take();
  Deserializer d(bytes);
  EXPECT_THROW(d.get<std::uint64_t>(), CheckFailure);
}

TEST(SerializationTest, EmptyVector) {
  Serializer s;
  s.put_vector(std::vector<int>{});
  const auto bytes = s.take();
  Deserializer d(bytes);
  EXPECT_TRUE(d.get_vector<int>().empty());
}

// ---- point to point ------------------------------------------------------------

TEST(ClusterTest, SendRecvDeliversPayload) {
  run_cluster(config_of(2), [](Communicator& comm) {
    if (comm.rank() == 0) {
      Serializer s;
      s.put<int>(42);
      comm.send(1, 5, s.take());
    } else {
      const auto payload = comm.recv(0, 5);
      Deserializer d(payload);
      EXPECT_EQ(d.get<int>(), 42);
    }
  });
}

TEST(ClusterTest, TagMatching) {
  run_cluster(config_of(2), [](Communicator& comm) {
    if (comm.rank() == 0) {
      Serializer s1;
      s1.put<int>(1);
      Serializer s2;
      s2.put<int>(2);
      comm.send(1, /*tag=*/100, s1.take());
      comm.send(1, /*tag=*/200, s2.take());
    } else {
      // Receive in reverse tag order; matching must be per (src, tag).
      const auto p2 = comm.recv(0, 200);
      Deserializer d2(p2);
      EXPECT_EQ(d2.get<int>(), 2);
      const auto p1 = comm.recv(0, 100);
      Deserializer d1(p1);
      EXPECT_EQ(d1.get<int>(), 1);
    }
  });
}

TEST(ClusterTest, FifoPerTag) {
  run_cluster(config_of(2), [](Communicator& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 10; ++i) {
        Serializer s;
        s.put<int>(i);
        comm.send(1, 9, s.take());
      }
    } else {
      for (int i = 0; i < 10; ++i) {
        const auto payload = comm.recv(0, 9);
        Deserializer d(payload);
        EXPECT_EQ(d.get<int>(), i);
      }
    }
  });
}

TEST(ClusterTest, ExchangeIsSymmetric) {
  run_cluster(config_of(2), [](Communicator& comm) {
    Serializer s;
    s.put<int>(comm.rank());
    const auto got = comm.exchange(1 - comm.rank(), 3, s.take());
    Deserializer d(got);
    EXPECT_EQ(d.get<int>(), 1 - comm.rank());
  });
}

// ---- virtual time ----------------------------------------------------------------

TEST(ClusterTest, RecvRespectsCausality) {
  // Rank 0 computes 1s then sends; rank 1 receives immediately. The
  // receive cannot complete before the send's arrival time.
  const RunReport report = run_cluster(config_of(2), [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.compute(1.0, "work");
      comm.send(1, 1, std::vector<std::uint8_t>(1000, 0));
    } else {
      (void)comm.recv(0, 1);
      EXPECT_GT(comm.clock().now(), 1.0);
    }
  });
  EXPECT_GT(report.makespan, 1.0);
  // Rank 1 spent most of its time waiting.
  EXPECT_GT(report.rank_comm[1].wait_seconds, 0.9);
}

TEST(ClusterTest, ComputeChargesPhases) {
  const RunReport report = run_cluster(config_of(1), [](Communicator& comm) {
    comm.compute(0.25, "indComp");
    comm.compute(0.50, "indComp");
    comm.compute(0.125, "merge");
  });
  EXPECT_DOUBLE_EQ(report.rank_phases[0].get("indComp"), 0.75);
  EXPECT_DOUBLE_EQ(report.rank_phases[0].get("merge"), 0.125);
  EXPECT_DOUBLE_EQ(report.makespan, 0.875);
}

TEST(ClusterTest, VirtualTimeDeterministicAcrossRuns) {
  auto body = [](Communicator& comm) {
    // Irregular compute so clocks differ across ranks.
    comm.compute(0.01 * (comm.rank() + 1), "work");
    const std::uint64_t total =
        comm.allreduce_sum(static_cast<std::uint64_t>(comm.rank()), 8);
    EXPECT_EQ(total, 6u);  // 0+1+2+3
    comm.barrier(9);
  };
  const RunReport a = run_cluster(config_of(4), body);
  const RunReport b = run_cluster(config_of(4), body);
  ASSERT_EQ(a.rank_finish_times.size(), b.rank_finish_times.size());
  for (std::size_t i = 0; i < a.rank_finish_times.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.rank_finish_times[i], b.rank_finish_times[i]);
  }
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

TEST(ClusterTest, SendOccupancyScalesWithBytes) {
  ClusterConfig cfg = config_of(2);
  cfg.net.gap_per_byte = 1e-6;
  cfg.net.overhead = 0.0;
  const RunReport report = run_cluster(cfg, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 1, std::vector<std::uint8_t>(1000, 0));
    } else {
      (void)comm.recv(0, 1);
    }
  });
  EXPECT_NEAR(report.rank_comm[0].comm_seconds, 1e-3, 1e-9);
}

// ---- fault support -----------------------------------------------------------------

TEST(ClusterTest, RejectsOutOfRangeFaultRanks) {
  // A typo'd rank must fail loudly at construction, not silently inject
  // nothing (which would make the run look fault-tolerant untested).
  ClusterConfig stall_cfg = config_of(2);
  stall_cfg.faults = FaultPlan::parse("stall=2@0.001x0.001");
  EXPECT_THROW(Cluster{stall_cfg}, CheckFailure);
  ClusterConfig crash_cfg = config_of(2);
  crash_cfg.faults = FaultPlan::parse("crash=2@0");
  EXPECT_THROW(Cluster{crash_cfg}, CheckFailure);
}

TEST(ClusterTest, CheckpointStoreRoundTrip) {
  ClusterConfig cfg = config_of(2);
  cfg.faults = FaultPlan::parse("crash=1@0");
  Cluster cluster(cfg);
  EXPECT_FALSE(cluster.checkpoint_get(0, 0).has_value());
  cluster.checkpoint_put(0, 0, {1, 2, 3});
  const auto blob = cluster.checkpoint_get(0, 0);
  ASSERT_TRUE(blob.has_value());
  EXPECT_EQ(*blob, (std::vector<std::uint8_t>{1, 2, 3}));
  // Double-writing a (cut, rank) key is a protocol bug.
  EXPECT_THROW(cluster.checkpoint_put(0, 0, {4}), CheckFailure);
}

TEST(ClusterTest, StallFiresDuringCommOnlyAdvance) {
  // Regression: stalls used to be polled only from compute(). A rank whose
  // clock crosses at_seconds inside recv (arrival join + drain) and never
  // computes again must still serve the stall.
  ClusterConfig cfg = config_of(2);
  cfg.faults = FaultPlan::parse("stall=1@0.5x0.25");
  const RunReport report = run_cluster(cfg, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.compute(1.0, "work");
      comm.send(1, 1, std::vector<std::uint8_t>(64, 0));
    } else {
      // Rank 1's clock only ever moves inside recv: the join to the
      // message's ~1.0s arrival crosses the stall scheduled at 0.5s.
      (void)comm.recv(0, 1);
      EXPECT_GT(comm.clock().now(), 1.25);
    }
  });
  EXPECT_DOUBLE_EQ(report.rank_comm[1].stall_seconds, 0.25);
  EXPECT_DOUBLE_EQ(report.rank_phases[1].get("fault.stall"), 0.25);
}

// ---- collectives -------------------------------------------------------------------

class CollectiveTest : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveTest, AllreduceSum) {
  const int p = GetParam();
  run_cluster(config_of(p), [p](Communicator& comm) {
    const auto total = comm.allreduce_sum(
        static_cast<std::uint64_t>(comm.rank() + 1), 1);
    EXPECT_EQ(total, static_cast<std::uint64_t>(p) * (p + 1) / 2);
  });
}

TEST_P(CollectiveTest, AllreduceMax) {
  const int p = GetParam();
  run_cluster(config_of(p), [p](Communicator& comm) {
    const auto m = comm.allreduce_max(
        static_cast<std::uint64_t>(comm.rank() * 10), 2);
    EXPECT_EQ(m, static_cast<std::uint64_t>(p - 1) * 10);
  });
}

TEST_P(CollectiveTest, AllreduceVector) {
  const int p = GetParam();
  run_cluster(config_of(p), [p](Communicator& comm) {
    std::vector<std::uint64_t> v{1, static_cast<std::uint64_t>(comm.rank())};
    const auto out = comm.allreduce_sum_vec(std::move(v), 3);
    EXPECT_EQ(out[0], static_cast<std::uint64_t>(p));
    EXPECT_EQ(out[1], static_cast<std::uint64_t>(p) * (p - 1) / 2);
  });
}

TEST_P(CollectiveTest, BroadcastFromEveryRoot) {
  const int p = GetParam();
  for (int root = 0; root < p; ++root) {
    run_cluster(config_of(p), [root](Communicator& comm) {
      Serializer s;
      if (comm.rank() == root) s.put<int>(123 + root);
      auto out = comm.broadcast(s.take(), root, 4);
      Deserializer d(out);
      EXPECT_EQ(d.get<int>(), 123 + root);
    });
  }
}

TEST_P(CollectiveTest, GatherCollectsInRankOrder) {
  const int p = GetParam();
  run_cluster(config_of(p), [p](Communicator& comm) {
    Serializer s;
    s.put<int>(comm.rank() * 2);
    auto out = comm.gather(s.take(), 0, 5);
    if (comm.rank() == 0) {
      ASSERT_EQ(out.size(), static_cast<std::size_t>(p));
      for (int r = 0; r < p; ++r) {
        Deserializer d(out[static_cast<std::size_t>(r)]);
        EXPECT_EQ(d.get<int>(), r * 2);
      }
    } else {
      EXPECT_TRUE(out.empty());
    }
  });
}

TEST_P(CollectiveTest, AllGather) {
  const int p = GetParam();
  run_cluster(config_of(p), [p](Communicator& comm) {
    Serializer s;
    s.put<int>(100 + comm.rank());
    auto out = comm.all_gather(s.take(), 6);
    ASSERT_EQ(out.size(), static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) {
      Deserializer d(out[static_cast<std::size_t>(r)]);
      EXPECT_EQ(d.get<int>(), 100 + r);
    }
  });
}

TEST_P(CollectiveTest, Barrier) {
  const int p = GetParam();
  run_cluster(config_of(p), [](Communicator& comm) {
    comm.compute(0.001 * comm.rank(), "w");
    comm.barrier(7);
    // After a barrier, every clock is at least the slowest pre-barrier
    // clock (dissemination guarantees transitive dependence).
    EXPECT_GE(comm.clock().now(), 0.001 * (comm.size() - 1));
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CollectiveTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 16));

// ---- subgroup collectives ------------------------------------------------------------

TEST(GroupTest, RankOfAndContains) {
  Group g{{2, 5, 9}};
  EXPECT_EQ(g.rank_of(5), 1);
  EXPECT_EQ(g.rank_of(3), -1);
  EXPECT_TRUE(g.contains(9));
  EXPECT_FALSE(g.contains(0));
}

TEST(GroupTest, SubgroupAllreduceIgnoresOutsiders) {
  run_cluster(config_of(6), [](Communicator& comm) {
    const Group g{{1, 3, 5}};
    if (g.contains(comm.rank())) {
      const auto total = comm.group_allreduce_sum(g, 10, 11);
      EXPECT_EQ(total, 30u);
    }
  });
}

TEST(GroupTest, SubgroupMin) {
  run_cluster(config_of(4), [](Communicator& comm) {
    const Group g{{0, 1, 2, 3}};
    const auto m = comm.group_allreduce_min(
        g, static_cast<std::uint64_t>(100 - comm.rank()), 12);
    EXPECT_EQ(m, 97u);
  });
}

TEST(GroupTest, RingShiftMovesPayloadLeft) {
  run_cluster(config_of(4), [](Communicator& comm) {
    const Group g{{0, 1, 2, 3}};
    Serializer s;
    s.put<int>(comm.rank());
    auto got = comm.ring_shift(g, 13, s.take());
    Deserializer d(got);
    // I receive from my right neighbor (rank+1 mod 4).
    EXPECT_EQ(d.get<int>(), (comm.rank() + 1) % 4);
  });
}

TEST(GroupTest, RingShiftSingleMember) {
  run_cluster(config_of(2), [](Communicator& comm) {
    if (comm.rank() == 0) {
      const Group g{{0}};
      Serializer s;
      s.put<int>(77);
      auto got = comm.ring_shift(g, 14, s.take());
      Deserializer d(got);
      EXPECT_EQ(d.get<int>(), 77);
    }
  });
}

TEST(GroupTest, TwoGroupsProceedIndependently) {
  run_cluster(config_of(4), [](Communicator& comm) {
    const Group mine = comm.rank() < 2 ? Group{{0, 1}} : Group{{2, 3}};
    for (int i = 0; i < 5; ++i) {
      const auto total = comm.group_allreduce_sum(mine, 1, 15);
      EXPECT_EQ(total, 2u);
    }
  });
}

// ---- error propagation ------------------------------------------------------------------

TEST(ClusterTest, RankExceptionPropagatesAndUnblocksOthers) {
  EXPECT_THROW(
      run_cluster(config_of(3),
                  [](Communicator& comm) {
                    if (comm.rank() == 0) {
                      throw std::runtime_error("rank 0 died");
                    }
                    // Other ranks block forever on a message that will
                    // never come; poisoning must unblock them.
                    (void)comm.recv(0, 99);
                  }),
      std::runtime_error);
}

// ---- memory tracker ----------------------------------------------------------------------

TEST(MemTrackerTest, ChargesAndPeaks) {
  MemTracker mem(1000);
  mem.charge(400);
  mem.charge(300);
  EXPECT_EQ(mem.used(), 700u);
  EXPECT_EQ(mem.peak(), 700u);
  mem.release(500);
  EXPECT_EQ(mem.used(), 200u);
  EXPECT_EQ(mem.peak(), 700u);
  EXPECT_EQ(mem.available(), 800u);
  EXPECT_TRUE(mem.can_fit(800));
  EXPECT_FALSE(mem.can_fit(801));
}

TEST(MemTrackerTest, CapacityViolationThrows) {
  MemTracker mem(100);
  mem.charge(90);
  EXPECT_THROW(mem.charge(20), CheckFailure);
}

TEST(MemTrackerTest, OverReleaseThrows) {
  MemTracker mem(100);
  mem.charge(10);
  EXPECT_THROW(mem.release(20), CheckFailure);
}

TEST(MemTrackerTest, ScopedCharge) {
  MemTracker mem(100);
  {
    ScopedCharge charge(mem, 60);
    EXPECT_EQ(mem.used(), 60u);
  }
  EXPECT_EQ(mem.used(), 0u);
}

TEST(MemTrackerTest, ClusterConfiguredCapacity) {
  ClusterConfig cfg = config_of(2);
  cfg.rank_memory_bytes = 512;
  EXPECT_THROW(run_cluster(cfg,
                           [](Communicator& comm) {
                             comm.memory().charge(1024);
                           }),
               CheckFailure);
}

// ---- phase breakdown ------------------------------------------------------------------------

TEST(PhaseBreakdownTest, MergeMaxAndSum) {
  PhaseBreakdown a;
  a.add("x", 1.0);
  a.add("y", 2.0);
  PhaseBreakdown b;
  b.add("x", 3.0);
  b.add("z", 0.5);
  PhaseBreakdown max = a;
  max.merge_max(b);
  EXPECT_DOUBLE_EQ(max.get("x"), 3.0);
  EXPECT_DOUBLE_EQ(max.get("y"), 2.0);
  EXPECT_DOUBLE_EQ(max.get("z"), 0.5);
  PhaseBreakdown sum = a;
  sum.merge_sum(b);
  EXPECT_DOUBLE_EQ(sum.get("x"), 4.0);
  EXPECT_DOUBLE_EQ(sum.total(), 6.5);
}

}  // namespace
}  // namespace mnd::sim
