// Edge-case coverage for mnd::FlatHashMap / FlatHashSet — the open-
// addressing tables behind the ghost list and the min-edge table — and for
// graph::UnionFind under adversarial union/find orders. These structures
// sit under every phase of both engines; a probing bug here surfaces as a
// wrong MST three layers up.
#include <algorithm>
#include <cstdint>
#include <random>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "graph/union_find.hpp"
#include "util/flat_hash.hpp"

namespace mnd {
namespace {

TEST(FlatHashMap, ZeroKeyIsARegularKey) {
  // Slot emptiness is tracked out-of-band, so key 0 (a real vertex id)
  // must behave like any other key.
  FlatHashMap<std::uint32_t, int> m;
  EXPECT_EQ(m.find(0u), nullptr);
  EXPECT_FALSE(m.contains(0u));
  m[0u] = 41;
  EXPECT_TRUE(m.contains(0u));
  EXPECT_EQ(*m.find(0u), 41);
  m.insert_or_assign(0u, 42);
  EXPECT_EQ(*m.find(0u), 42);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_TRUE(m.erase(0u));
  EXPECT_FALSE(m.contains(0u));
  EXPECT_EQ(m.size(), 0u);
  // Reinsert after erase: the tombstone must not mask the key.
  m[0u] = 7;
  EXPECT_EQ(*m.find(0u), 7);
}

TEST(FlatHashMap, EraseInterleavedWithGrowth) {
  // Grow the table while tombstones are present: rehash must drop the
  // tombstones and preserve exactly the live entries.
  FlatHashMap<std::uint32_t, std::uint32_t> m(4);
  std::unordered_map<std::uint32_t, std::uint32_t> ref;
  for (std::uint32_t k = 0; k < 4096; ++k) {
    m.insert_or_assign(k, k * 3u);
    ref[k] = k * 3u;
    if (k % 3 == 0) {  // erase a third of the keys as we go
      EXPECT_TRUE(m.erase(k));
      ref.erase(k);
    }
  }
  EXPECT_EQ(m.size(), ref.size());
  for (const auto& [k, v] : ref) {
    const auto* got = m.find(k);
    ASSERT_NE(got, nullptr) << "lost key " << k;
    EXPECT_EQ(*got, v);
  }
  std::size_t visited = 0;
  m.for_each([&](const std::uint32_t& k, const std::uint32_t& v) {
    ++visited;
    auto it = ref.find(k);
    ASSERT_NE(it, ref.end()) << "ghost key " << k;
    EXPECT_EQ(it->second, v);
  });
  EXPECT_EQ(visited, ref.size());
}

TEST(FlatHashMap, TombstoneReuseKeepsCapacityBounded) {
  // Cycling insert/erase over a fixed key set must reuse tombstoned
  // slots on the probe path instead of growing forever.
  FlatHashMap<std::uint32_t, int> m(64);
  for (std::uint32_t k = 0; k < 48; ++k) m.insert_or_assign(k, 0);
  const std::size_t cap_before = m.capacity();
  for (int cycle = 0; cycle < 10000; ++cycle) {
    const std::uint32_t k = static_cast<std::uint32_t>(cycle % 48);
    EXPECT_TRUE(m.erase(k));
    EXPECT_FALSE(m.insert_or_assign(k, cycle) == false);
    EXPECT_EQ(*m.find(k), cycle);
  }
  EXPECT_EQ(m.size(), 48u);
  EXPECT_EQ(m.capacity(), cap_before)
      << "tombstones were not reused on reinsertion";
}

TEST(FlatHashMap, RandomizedDifferentialAgainstStdMap) {
  std::mt19937 rng(0xC0FFEE);
  FlatHashMap<std::uint64_t, std::uint64_t> m;
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  std::uniform_int_distribution<std::uint64_t> key_dist(0, 511);
  for (int op = 0; op < 100000; ++op) {
    const std::uint64_t k = key_dist(rng);
    switch (rng() % 4) {
      case 0:
        EXPECT_EQ(m.insert_or_assign(k, k + 1), ref.insert_or_assign(k, k + 1).second);
        break;
      case 1:
        m[k] += 1;
        ref[k] += 1;
        break;
      case 2:
        EXPECT_EQ(m.erase(k), ref.erase(k) > 0);
        break;
      default: {
        const auto* got = m.find(k);
        const auto it = ref.find(k);
        ASSERT_EQ(got != nullptr, it != ref.end()) << "key " << k;
        if (got != nullptr) {
          EXPECT_EQ(*got, it->second);
        }
      }
    }
    ASSERT_EQ(m.size(), ref.size());
  }
}

TEST(FlatHashMap, ClearResetsTombstones) {
  FlatHashMap<std::uint32_t, int> m(8);
  for (std::uint32_t k = 0; k < 8; ++k) m.insert_or_assign(k, 1);
  for (std::uint32_t k = 0; k < 8; ++k) m.erase(k);
  m.clear();
  EXPECT_TRUE(m.empty());
  for (std::uint32_t k = 0; k < 8; ++k) {
    EXPECT_FALSE(m.contains(k));
    m.insert_or_assign(k, 2);
  }
  EXPECT_EQ(m.size(), 8u);
}

TEST(FlatHashSet, InsertEraseContains) {
  FlatHashSet<std::uint32_t> s;
  EXPECT_TRUE(s.insert(0u));
  EXPECT_FALSE(s.insert(0u));
  EXPECT_TRUE(s.insert(1u));
  EXPECT_TRUE(s.contains(0u));
  EXPECT_TRUE(s.erase(0u));
  EXPECT_FALSE(s.erase(0u));
  EXPECT_FALSE(s.contains(0u));
  EXPECT_TRUE(s.contains(1u));
  EXPECT_EQ(s.size(), 1u);
}

// ---------------------------------------------------------------------------
// UnionFind under adversarial orders.
// ---------------------------------------------------------------------------

// Naive reference: label propagation to a canonical representative.
class NaiveDsu {
 public:
  explicit NaiveDsu(std::size_t n) : label_(n) {
    for (std::size_t i = 0; i < n; ++i) {
      label_[i] = static_cast<graph::VertexId>(i);
    }
  }
  void unite(graph::VertexId a, graph::VertexId b) {
    const graph::VertexId la = label_[a], lb = label_[b];
    if (la == lb) return;
    for (auto& l : label_) {
      if (l == lb) l = la;
    }
  }
  bool connected(graph::VertexId a, graph::VertexId b) const {
    return label_[a] == label_[b];
  }

 private:
  std::vector<graph::VertexId> label_;
};

TEST(UnionFind, LongChainThenFindFromDeepEnd) {
  // Build a maximal-depth chain (always unite a fresh singleton into the
  // growing set), then query from the deep end: path halving must resolve
  // every vertex to one root and keep answers consistent.
  constexpr std::size_t kN = 1 << 14;
  graph::UnionFind uf(kN);
  for (graph::VertexId v = 1; v < kN; ++v) uf.unite(v - 1, v);
  const graph::VertexId root = uf.find(kN - 1);
  for (graph::VertexId v = 0; v < kN; ++v) {
    EXPECT_EQ(uf.find(v), root);
  }
  EXPECT_EQ(uf.num_components(), 1u);
  EXPECT_EQ(uf.component_size(0), kN);
}

TEST(UnionFind, AdversarialOrdersMatchNaiveReference) {
  // Same union sequence applied in several orders (sequential, reversed,
  // seeded shuffles, interleaved with finds) must yield the same
  // partition as the naive reference.
  constexpr std::size_t kN = 256;
  std::vector<std::pair<graph::VertexId, graph::VertexId>> unions;
  std::mt19937 rng(2026);
  std::uniform_int_distribution<graph::VertexId> v_dist(0, kN - 1);
  for (int i = 0; i < 300; ++i) unions.emplace_back(v_dist(rng), v_dist(rng));

  for (int order = 0; order < 6; ++order) {
    auto seq = unions;
    if (order == 1) {
      std::reverse(seq.begin(), seq.end());
    } else if (order >= 2) {
      std::mt19937 shuffle_rng(static_cast<std::uint32_t>(order));
      std::shuffle(seq.begin(), seq.end(), shuffle_rng);
    }
    graph::UnionFind uf(kN);
    NaiveDsu ref(kN);
    std::size_t i = 0;
    for (const auto& [a, b] : seq) {
      const bool fresh = !ref.connected(a, b);
      ref.unite(a, b);
      EXPECT_EQ(uf.unite(a, b), fresh);
      // Interleave finds so path halving rewrites parents mid-sequence.
      if (++i % 7 == 0) uf.find(v_dist(rng));
    }
    for (graph::VertexId a = 0; a < kN; ++a) {
      for (graph::VertexId b = a + 1; b < kN; b += 17) {
        ASSERT_EQ(uf.connected(a, b), ref.connected(a, b))
            << "order " << order << ": vertices " << a << "," << b;
      }
    }
  }
}

TEST(UnionFind, UniteReturnsFalseOnlyWhenJoined) {
  graph::UnionFind uf(4);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.unite(2, 3));
  EXPECT_FALSE(uf.unite(1, 0));
  EXPECT_EQ(uf.num_components(), 2u);
  EXPECT_TRUE(uf.unite(0, 3));
  EXPECT_FALSE(uf.unite(2, 1));
  EXPECT_EQ(uf.num_components(), 1u);
}

}  // namespace
}  // namespace mnd
