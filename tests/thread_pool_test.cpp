// Edge cases and concurrency behavior of util::ThreadPool, plus the
// deterministic parallel_chunks grid the threaded kernels depend on.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

namespace mnd {
namespace {

TEST(ThreadPoolChunks, EmptyRangeIsNoOp) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_chunks(7, 7, 4,
                       [&](std::size_t, std::size_t, std::size_t) {
                         called = true;
                       });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolChunks, ReversedRangeIsNoOp) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_chunks(10, 3, 4,
                       [&](std::size_t, std::size_t, std::size_t) {
                         called = true;
                       });
  EXPECT_FALSE(called);
  pool.parallel_for_chunks(10, 3,
                           [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolChunks, MorePartsThanItems) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_chunks(0, 3, 16, [&](std::size_t, std::size_t lo,
                                     std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolChunks, MoreThreadsThanItemsInForChunks) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for_chunks(0, 3, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolChunks, CoversRangeExactlyOnceWithDisjointChunks) {
  ThreadPool pool(4);
  const std::size_t n = 1013;
  std::vector<std::atomic<int>> hits(n);
  std::mutex mu;
  std::set<std::size_t> parts_seen;
  pool.parallel_chunks(0, n, 7, [&](std::size_t part, std::size_t lo,
                                    std::size_t hi) {
    EXPECT_LT(lo, hi);
    {
      std::lock_guard<std::mutex> lock(mu);
      EXPECT_TRUE(parts_seen.insert(part).second);
    }
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  EXPECT_EQ(parts_seen.size(), ThreadPool::chunk_count(n, 7));
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolChunks, ChunkCountIsPure) {
  EXPECT_EQ(ThreadPool::chunk_count(0, 8), 0u);
  EXPECT_EQ(ThreadPool::chunk_count(5, 8), 5u);
  EXPECT_EQ(ThreadPool::chunk_count(100, 8), 8u);
  EXPECT_EQ(ThreadPool::chunk_count(100, 0), 1u);
  EXPECT_EQ(ThreadPool::chunk_count(1, 1), 1u);
}

TEST(ThreadPoolChunks, GridIndependentOfPoolSize) {
  // Same (n, max_parts) must yield the same chunk boundaries on pools of
  // any size — kernels index per-chunk scratch by part id.
  const std::size_t n = 777;
  const std::size_t max_parts = 6;
  auto boundaries = [&](std::size_t pool_size) {
    ThreadPool pool(pool_size);
    std::mutex mu;
    std::vector<std::pair<std::size_t, std::size_t>> out(
        ThreadPool::chunk_count(n, max_parts));
    pool.parallel_chunks(0, n, max_parts,
                         [&](std::size_t part, std::size_t lo,
                             std::size_t hi) {
                           std::lock_guard<std::mutex> lock(mu);
                           out[part] = {lo, hi};
                         });
    return out;
  };
  EXPECT_EQ(boundaries(1), boundaries(4));
  EXPECT_EQ(boundaries(2), boundaries(8));
}

TEST(ThreadPoolChunks, NestedCallFromWorkerRunsInline) {
  ThreadPool pool(2);
  std::atomic<int> inner_hits{0};
  // Outer parallel region saturates the pool; each chunk starts a nested
  // region, which must complete inline instead of deadlocking.
  pool.parallel_chunks(0, 8, 8, [&](std::size_t, std::size_t, std::size_t) {
    pool.parallel_chunks(0, 4, 4,
                         [&](std::size_t, std::size_t lo, std::size_t hi) {
                           inner_hits.fetch_add(static_cast<int>(hi - lo));
                         });
  });
  EXPECT_EQ(inner_hits.load(), 8 * 4);
}

TEST(ThreadPoolChunks, ConcurrentCallersDoNotCoupleOnLatch) {
  // Two external threads drive parallel_chunks on a shared pool at the
  // same time, as simulated ranks do. Both must finish with full coverage.
  ThreadPool pool(3);
  std::atomic<int> a{0};
  std::atomic<int> b{0};
  std::thread ta([&] {
    for (int r = 0; r < 50; ++r) {
      pool.parallel_chunks(0, 64, 4,
                           [&](std::size_t, std::size_t lo, std::size_t hi) {
                             a.fetch_add(static_cast<int>(hi - lo));
                           });
    }
  });
  std::thread tb([&] {
    for (int r = 0; r < 50; ++r) {
      pool.parallel_chunks(0, 64, 4,
                           [&](std::size_t, std::size_t lo, std::size_t hi) {
                             b.fetch_add(static_cast<int>(hi - lo));
                           });
    }
  });
  ta.join();
  tb.join();
  EXPECT_EQ(a.load(), 50 * 64);
  EXPECT_EQ(b.load(), 50 * 64);
}

TEST(ThreadPoolTasks, DrainsAllSubmittedTasksAndStaysReusable) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 100; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(count.load(), (round + 1) * 100);
  }
}

TEST(ThreadPoolTiming, ScopedChunkTimingRecordsOneRegionPerCall) {
  ThreadPool pool(4);
  ChunkTimeLog log;
  {
    ScopedChunkTiming timing(&log);
    pool.parallel_chunks(0, 100, 4,
                         [](std::size_t, std::size_t, std::size_t) {});
    pool.parallel_chunks(0, 10, 2,
                         [](std::size_t, std::size_t, std::size_t) {});
  }
  ASSERT_EQ(log.regions.size(), 2u);
  EXPECT_EQ(log.regions[0].chunk_seconds.size(), 4u);
  EXPECT_EQ(log.regions[1].chunk_seconds.size(), 2u);
  for (const auto& region : log.regions) {
    for (double s : region.chunk_seconds) EXPECT_GE(s, 0.0);
  }
  // Outside the scope, timing is off again.
  pool.parallel_chunks(0, 10, 2,
                       [](std::size_t, std::size_t, std::size_t) {});
  EXPECT_EQ(log.regions.size(), 2u);
}

TEST(ThreadPoolConfig, ParseThreadCount) {
  EXPECT_EQ(parse_thread_count(nullptr), 0u);
  EXPECT_EQ(parse_thread_count(""), 0u);
  EXPECT_EQ(parse_thread_count("0"), 0u);
  EXPECT_EQ(parse_thread_count("-3"), 0u);
  EXPECT_EQ(parse_thread_count("abc"), 0u);
  EXPECT_EQ(parse_thread_count("4x"), 0u);
  EXPECT_EQ(parse_thread_count("1"), 1u);
  EXPECT_EQ(parse_thread_count("8"), 8u);
}

TEST(ThreadPoolConfig, DefaultThreadCountIsPositiveAndStable) {
  const std::size_t first = default_thread_count();
  EXPECT_GE(first, 1u);
  EXPECT_EQ(default_thread_count(), first);
  EXPECT_GE(global_pool().thread_count(), 1u);
}

TEST(ThreadPoolBalance, BalancedBoundsSplitWeightEvenly) {
  std::vector<std::size_t> weights = {100, 1, 1, 1, 1, 1, 1, 94};
  const auto bounds = balanced_chunk_bounds(weights, 2);
  ASSERT_EQ(bounds.size(), 3u);
  EXPECT_EQ(bounds.front(), 0u);
  EXPECT_EQ(bounds.back(), weights.size());
  // The heavy head lands alone in chunk 0 instead of a 4/4 count split.
  EXPECT_EQ(bounds[1], 1u);
}

TEST(ThreadPoolBalance, BalancedBoundsAreMonotoneAndCoverAllItems) {
  std::vector<std::size_t> weights = {0, 0, 5, 0, 0, 0, 9, 0, 2, 0};
  for (std::size_t parts : {1u, 2u, 3u, 7u, 20u}) {
    const auto bounds = balanced_chunk_bounds(weights, parts);
    ASSERT_EQ(bounds.size(), parts + 1);
    EXPECT_EQ(bounds.front(), 0u);
    EXPECT_EQ(bounds.back(), weights.size());
    for (std::size_t p = 0; p < parts; ++p) EXPECT_LE(bounds[p], bounds[p + 1]);
  }
  EXPECT_EQ(balanced_chunk_bounds({}, 4).back(), 0u);
}

}  // namespace
}  // namespace mnd
