// Tests for the device cost models and CPU:GPU calibration.
#include <gtest/gtest.h>

#include "device/calibration.hpp"
#include "device/device.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"

namespace mnd::device {
namespace {

KernelWork make_work(std::size_t vertices, std::size_t edges,
                     std::size_t atomics = 0, std::size_t max_deg = 8) {
  KernelWork w;
  w.active_vertices = vertices;
  w.edges_scanned = edges;
  w.atomic_updates = atomics;
  w.max_degree = max_deg;
  return w;
}

// ---- CPU model ---------------------------------------------------------------

TEST(CpuModelTest, TimeScalesWithWork) {
  const CpuModel cpu;
  const double t1 = cpu.kernel_seconds(make_work(1000, 10000));
  const double t2 = cpu.kernel_seconds(make_work(2000, 20000));
  EXPECT_NEAR(t2, 2.0 * t1, 1e-12);
}

TEST(CpuModelTest, MoreThreadsFaster) {
  CpuModel one;
  one.threads = 1;
  CpuModel eight;
  eight.threads = 8;
  const auto w = make_work(1000, 100000);
  EXPECT_GT(one.kernel_seconds(w), eight.kernel_seconds(w) * 4);
}

TEST(CpuModelTest, PregelWorkerIsSlowerPerItem) {
  // ~1.5x framework tax over the native kernels.
  const auto w = make_work(1000, 100000, 1000);
  EXPECT_GT(CpuModel::pregel_worker_8core().kernel_seconds(w),
            CpuModel::amd_opteron_8core().kernel_seconds(w) * 1.2);
}

// ---- GPU model ---------------------------------------------------------------

TEST(GpuModelTest, LaunchOverheadDominatesTinyKernels) {
  const GpuModel gpu;
  const double t = gpu.kernel_seconds(make_work(1, 1));
  EXPECT_GE(t, gpu.launch_overhead);
  EXPECT_LT(t, gpu.launch_overhead * 10);
}

TEST(GpuModelTest, SaturatedThroughputBeatsCpu) {
  const GpuModel gpu;
  const CpuModel cpu;
  const auto big = make_work(1 << 20, 16 << 20, 1 << 16, 64);
  EXPECT_LT(gpu.kernel_seconds(big), cpu.kernel_seconds(big));
}

TEST(GpuModelTest, SmallKernelsFavorCpu) {
  const GpuModel gpu;
  const CpuModel cpu;
  const auto tiny = make_work(100, 800, 50, 16);
  EXPECT_GT(gpu.kernel_seconds(tiny), cpu.kernel_seconds(tiny));
}

TEST(GpuModelTest, OccupancyMonotone) {
  const GpuModel gpu;
  EXPECT_LT(gpu.occupancy(1000), gpu.occupancy(100000));
  EXPECT_LT(gpu.occupancy(1e9), 1.0);
}

TEST(GpuModelTest, HierarchicalAdjacencyHelpsSkewedGraphs) {
  GpuModel with;
  with.hierarchical_adjacency = true;
  GpuModel without;
  without.hierarchical_adjacency = false;
  // A hub adjacency much larger than the average.
  const auto skewed = make_work(100000, 400000, 0, /*max_deg=*/100000);
  EXPECT_LT(with.kernel_seconds(skewed), without.kernel_seconds(skewed));
  // On uniform-degree work the optimization is neutral.
  const auto uniform = make_work(100000, 400000, 0, /*max_deg=*/8);
  EXPECT_DOUBLE_EQ(with.kernel_seconds(uniform),
                   without.kernel_seconds(uniform));
}

TEST(GpuModelTest, AtomicBatchingHelps) {
  GpuModel with;
  with.batched_atomics = true;
  GpuModel without;
  without.batched_atomics = false;
  const auto atomic_heavy = make_work(100000, 200000, 150000, 32);
  EXPECT_LT(with.kernel_seconds(atomic_heavy),
            without.kernel_seconds(atomic_heavy));
}

// ---- PCIe model ----------------------------------------------------------------

TEST(PcieModelTest, TransferScalesWithBytes) {
  const PcieModel pcie;
  EXPECT_GT(pcie.transfer_seconds(100 << 20),
            pcie.transfer_seconds(1 << 20) * 50);
}

TEST(PcieModelTest, StreamOverlapHidesTransfers) {
  PcieModel overlap;
  overlap.overlap_streams = true;
  PcieModel serial;
  serial.overlap_streams = false;
  const double kernel = 1e-3;
  const std::size_t bytes = 4 << 20;
  EXPECT_LT(overlap.kernel_with_transfers(kernel, bytes, bytes / 8),
            serial.kernel_with_transfers(kernel, bytes, bytes / 8));
}

TEST(PcieModelTest, OverlapBoundedByMax) {
  PcieModel pcie;
  pcie.overlap_streams = true;
  const double kernel = 1e-3;
  const std::size_t bytes_in = 1 << 20;
  const double t = pcie.kernel_with_transfers(kernel, bytes_in, 0);
  EXPECT_GE(t, kernel);
  EXPECT_GE(t, pcie.transfer_seconds(bytes_in));
}

// ---- device wrappers --------------------------------------------------------------

TEST(DeviceTest, KindsAndNames) {
  const CpuDevice cpu;
  const GpuDevice gpu;
  EXPECT_EQ(cpu.kind(), DeviceKind::Cpu);
  EXPECT_EQ(gpu.kind(), DeviceKind::Gpu);
  EXPECT_NE(cpu.name().find("cpu"), std::string::npos);
  EXPECT_EQ(cpu.memory_bytes(), kUnlimitedMemory);
  EXPECT_EQ(gpu.memory_bytes(), 12ull << 30);
}

TEST(DeviceTest, GpuPeakExceedsCpuPeak) {
  const CpuDevice cpu;
  const GpuDevice gpu;
  EXPECT_GT(gpu.peak_edges_per_second(), cpu.peak_edges_per_second());
}

TEST(DeviceTest, CpuIgnoresTransferBytes) {
  const CpuDevice cpu;
  const auto w = make_work(1000, 10000);
  EXPECT_DOUBLE_EQ(cpu.kernel_with_transfers(w, 1 << 30, 1 << 30),
                   cpu.kernel_seconds(w));
}

TEST(DeviceTest, GpuChargesTransfers) {
  const GpuDevice gpu;
  const auto w = make_work(1000, 10000);
  EXPECT_GT(gpu.kernel_with_transfers(w, 64 << 20, 1 << 20),
            gpu.kernel_seconds(w));
}

// ---- calibration --------------------------------------------------------------------

TEST(CalibrationTest, LargeGraphGivesGpuMeaningfulShare) {
  const auto el = graph::rmat(13, 80000, 5);
  const auto csr = graph::Csr::from_edge_list(el);
  const CpuDevice cpu;
  // Stand-in-scaled GPU model, as the engine defaults use.
  const GpuDevice gpu(GpuModel::tesla_k40().for_data_scale(4000.0),
                      PcieModel{}.for_data_scale(4000.0));
  const auto result = calibrate_split(csr, cpu, gpu);
  EXPECT_EQ(result.subgraphs_used, 8);
  EXPECT_GT(result.gpu_share, 0.25);
  EXPECT_LE(result.gpu_share, 0.95);
  EXPECT_GT(result.virtual_seconds, 0.0);
}

TEST(GpuModelTest, DataScaleShrinksFixedCosts) {
  const GpuModel base = GpuModel::tesla_k40();
  const GpuModel scaled = base.for_data_scale(100.0);
  EXPECT_DOUBLE_EQ(scaled.launch_overhead, base.launch_overhead / 100.0);
  EXPECT_DOUBLE_EQ(scaled.saturation_items, base.saturation_items / 100.0);
  // Throughput constants unchanged.
  EXPECT_DOUBLE_EQ(scaled.seconds_per_edge, base.seconds_per_edge);
}

TEST(CalibrationTest, TinyGraphLimitsGpuShare) {
  const auto el = graph::path_graph(64);
  const auto csr = graph::Csr::from_edge_list(el);
  const CpuDevice cpu;
  const GpuDevice gpu;
  const auto tiny = calibrate_split(csr, cpu, gpu);
  const auto big_el = graph::rmat(13, 120000, 6);
  const auto big = calibrate_split(graph::Csr::from_edge_list(big_el), cpu,
                                   gpu);
  // Launch overhead + transfers make the GPU less attractive on tiny work.
  EXPECT_LT(tiny.gpu_share, big.gpu_share);
}

TEST(CalibrationTest, GpuMemoryBoundCapsShare) {
  const auto el = graph::rmat(12, 60000, 7);
  const auto csr = graph::Csr::from_edge_list(el);
  const CpuDevice cpu;
  GpuModel small_mem;
  small_mem.memory_bytes = 256 * 1024;  // tiny device memory
  const GpuDevice gpu(small_mem);
  const auto result = calibrate_split(csr, cpu, gpu);
  // CSR is ~ (60000*2*16 + ...) bytes; 80% of 256KB caps the share low.
  EXPECT_LT(result.gpu_share, 0.2);
}

TEST(CalibrationTest, Deterministic) {
  const auto el = graph::rmat(11, 30000, 9);
  const auto csr = graph::Csr::from_edge_list(el);
  const CpuDevice cpu;
  const GpuDevice gpu;
  const auto a = calibrate_split(csr, cpu, gpu);
  const auto b = calibrate_split(csr, cpu, gpu);
  EXPECT_DOUBLE_EQ(a.gpu_share, b.gpu_share);
}

TEST(CalibrationTest, RespectsOptions) {
  const auto el = graph::rmat(11, 30000, 9);
  const auto csr = graph::Csr::from_edge_list(el);
  CalibrationOptions opts;
  opts.num_subgraphs = 5;  // paper: 5-10 subgraphs of 5% vertices
  opts.vertex_fraction = 0.05;
  const auto result = calibrate_split(csr, CpuDevice{}, GpuDevice{}, opts);
  EXPECT_EQ(result.subgraphs_used, 5);
}

TEST(CalibrationTest, BoruvkaPassWorkCountsBothDirections) {
  const auto w = boruvka_pass_work(100, 500, 30);
  EXPECT_EQ(w.active_vertices, 100u);
  EXPECT_EQ(w.edges_scanned, 1000u);
  EXPECT_EQ(w.max_degree, 30u);
}

}  // namespace
}  // namespace mnd::device
