// Fault injection & recovery: the seeded FaultPlan, the reliable
// transport built on it, and the engine's checkpoint/heartbeat/adoption
// protocol. The central contract under test is the recovery guarantee:
// for ANY plan that leaves at least one surviving rank, the final forest
// is byte-identical to the fault-free run — faults may only change
// virtual times and fault.* counters.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/reference_mst.hpp"
#include "mst/mnd_mst.hpp"
#include "simcluster/fault.hpp"
#include "util/check.hpp"

namespace mnd {
namespace {

using sim::FaultPlan;

// --- FaultPlan::parse ------------------------------------------------------

TEST(FaultPlanTest, ParseFullSpec) {
  const FaultPlan p = FaultPlan::parse(
      "seed=42, drop=0.01, delay=0.05:0.0005, dup=0.02, "
      "stall=2@0.001x0.004, crash=3@1, crash=5@2, retry=0.002, "
      "detect=0.01");
  EXPECT_EQ(p.seed, 42u);
  EXPECT_DOUBLE_EQ(p.drop_prob, 0.01);
  EXPECT_DOUBLE_EQ(p.delay_prob, 0.05);
  EXPECT_DOUBLE_EQ(p.delay_seconds, 0.0005);
  EXPECT_DOUBLE_EQ(p.dup_prob, 0.02);
  EXPECT_DOUBLE_EQ(p.retry_timeout_seconds, 0.002);
  EXPECT_DOUBLE_EQ(p.detect_timeout_seconds, 0.01);
  ASSERT_EQ(p.stalls.size(), 1u);
  EXPECT_EQ(p.stalls[0].rank, 2);
  EXPECT_DOUBLE_EQ(p.stalls[0].at_seconds, 0.001);
  EXPECT_DOUBLE_EQ(p.stalls[0].duration_seconds, 0.004);
  ASSERT_EQ(p.crashes.size(), 2u);
  EXPECT_EQ(p.crash_cut(3), 1);
  EXPECT_EQ(p.crash_cut(5), 2);
  EXPECT_EQ(p.crash_cut(0), -1);
  EXPECT_TRUE(p.active());
  EXPECT_TRUE(p.message_faults());
}

TEST(FaultPlanTest, ParseCrashOnlyPlanHasNoMessageFaults) {
  const FaultPlan p = FaultPlan::parse("crash=1@0");
  EXPECT_TRUE(p.active());
  EXPECT_FALSE(p.message_faults());
}

TEST(FaultPlanTest, DefaultPlanIsInactive) {
  const FaultPlan p;
  EXPECT_FALSE(p.active());
  EXPECT_FALSE(p.message_faults());
}

TEST(FaultPlanTest, ParseRejectsMalformedSpecs) {
  EXPECT_THROW(FaultPlan::parse("bogus=1"), CheckFailure);
  EXPECT_THROW(FaultPlan::parse("drop=1.0"), CheckFailure);   // must be < 1
  EXPECT_THROW(FaultPlan::parse("drop=-0.1"), CheckFailure);
  EXPECT_THROW(FaultPlan::parse("drop=abc"), CheckFailure);
  EXPECT_THROW(FaultPlan::parse("delay=0.1"), CheckFailure);  // needs :SECONDS
  EXPECT_THROW(FaultPlan::parse("stall=2@0.001"), CheckFailure);
  EXPECT_THROW(FaultPlan::parse("crash=3"), CheckFailure);
  EXPECT_THROW(FaultPlan::parse("crash=1@0,crash=1@2"), CheckFailure);
  EXPECT_THROW(FaultPlan::parse("seed="), CheckFailure);
  EXPECT_THROW(FaultPlan::parse("drop"), CheckFailure);
}

TEST(FaultPlanTest, StallsForFiltersAndSorts) {
  const FaultPlan p = FaultPlan::parse(
      "stall=1@0.002x0.001,stall=1@0.001x0.003,stall=2@0.005x0.001");
  const auto s1 = p.stalls_for(1);
  ASSERT_EQ(s1.size(), 2u);
  EXPECT_DOUBLE_EQ(s1[0].at_seconds, 0.001);  // ascending by at_seconds
  EXPECT_DOUBLE_EQ(s1[1].at_seconds, 0.002);
  EXPECT_EQ(p.stalls_for(2).size(), 1u);
  EXPECT_TRUE(p.stalls_for(0).empty());
}

// --- Deterministic decision streams ---------------------------------------

TEST(FaultPlanTest, DecisionsAreDeterministicAndSeedDependent) {
  FaultPlan a = FaultPlan::parse("seed=7,drop=0.3,delay=0.3:0.001,dup=0.3");
  FaultPlan b = a;
  FaultPlan other = a;
  other.seed = 8;

  int drop_diffs = 0, delay_diffs = 0, dup_diffs = 0;
  for (std::uint64_t seq = 0; seq < 256; ++seq) {
    const int src = static_cast<int>(seq % 4);
    const int dst = static_cast<int>((seq / 4) % 4);
    const sim::Tag tag = static_cast<sim::Tag>(seq % 5);
    // Same plan -> identical decisions, call after call.
    EXPECT_EQ(a.drops(src, dst, tag, seq, 0), b.drops(src, dst, tag, seq, 0));
    EXPECT_EQ(a.delays(src, dst, tag, seq), b.delays(src, dst, tag, seq));
    EXPECT_EQ(a.duplicates(src, dst, tag, seq),
              b.duplicates(src, dst, tag, seq));
    // Different seed -> a different (not necessarily disjoint) stream.
    drop_diffs += a.drops(src, dst, tag, seq, 0) !=
                  other.drops(src, dst, tag, seq, 0);
    delay_diffs += a.delays(src, dst, tag, seq) !=
                   other.delays(src, dst, tag, seq);
    dup_diffs += a.duplicates(src, dst, tag, seq) !=
                 other.duplicates(src, dst, tag, seq);
  }
  EXPECT_GT(drop_diffs, 0);
  EXPECT_GT(delay_diffs, 0);
  EXPECT_GT(dup_diffs, 0);
}

TEST(FaultPlanTest, DropRateTracksProbability) {
  const FaultPlan p = FaultPlan::parse("seed=3,drop=0.25");
  int dropped = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    dropped += p.drops(0, 1, sim::Tag{1}, static_cast<std::uint64_t>(i), 0);
  }
  const double rate = static_cast<double>(dropped) / n;
  EXPECT_NEAR(rate, 0.25, 0.03);
}

TEST(FaultPlanTest, RetransmissionAttemptsDrawIndependently) {
  // With drop=0.5, attempt 0 and attempt 1 of the same message must not
  // always agree — each transmission attempt is its own draw.
  const FaultPlan p = FaultPlan::parse("seed=5,drop=0.5");
  int diffs = 0;
  for (std::uint64_t seq = 0; seq < 128; ++seq) {
    diffs += p.drops(0, 1, sim::Tag{1}, seq, 0) !=
             p.drops(0, 1, sim::Tag{1}, seq, 1);
  }
  EXPECT_GT(diffs, 0);
}

TEST(FaultPlanTest, BackoffDoublesPerAttempt) {
  const FaultPlan p;
  EXPECT_DOUBLE_EQ(p.backoff_seconds(0.001, 0), 0.001);
  EXPECT_DOUBLE_EQ(p.backoff_seconds(0.001, 1), 0.002);
  EXPECT_DOUBLE_EQ(p.backoff_seconds(0.001, 3), 0.008);
}

// --- End-to-end recovery guarantee ----------------------------------------

mst::MndMstReport run_with(const graph::EdgeList& el, int nodes,
                           const std::string& faults, bool gpu = false) {
  mst::MndMstOptions opts;
  opts.num_nodes = nodes;
  opts.validate = true;
  opts.engine.use_gpu = gpu;
  if (!faults.empty()) opts.faults = FaultPlan::parse(faults);
  return mst::run_mnd_mst(el, opts);
}

void expect_same_forest(const mst::MndMstReport& faulty,
                        const mst::MndMstReport& clean) {
  EXPECT_TRUE(faulty.validation.ok())
      << faulty.validation.failures().front().check << ": "
      << faulty.validation.failures().front().detail;
  EXPECT_EQ(faulty.forest.edges, clean.forest.edges)
      << "fault injection changed the forest";
  EXPECT_EQ(faulty.forest.total_weight, clean.forest.total_weight);
}

TEST(FaultRecoveryTest, MessageFaultsLeaveForestIdentical) {
  const graph::EdgeList el = graph::rmat(10, 6000, 11);
  const auto clean = run_with(el, 4, "");
  const auto faulty =
      run_with(el, 4, "seed=9,drop=0.05,delay=0.1:0.0002,dup=0.05");
  expect_same_forest(faulty, clean);
  // Reliability layer paid for the injected faults in virtual time.
  std::uint64_t retrans = 0, dups = 0;
  for (const auto& s : faulty.run.rank_comm) {
    retrans += s.retransmissions;
    dups += s.duplicates_dropped;
  }
  EXPECT_GT(retrans, 0u);
  EXPECT_GT(dups, 0u);
  EXPECT_GT(faulty.total_seconds, clean.total_seconds);
}

TEST(FaultRecoveryTest, StallDelaysOneRankOnly) {
  const graph::EdgeList el = graph::rmat(10, 6000, 11);
  const auto clean = run_with(el, 4, "");
  const auto faulty = run_with(el, 4, "stall=2@0.0001x0.005");
  expect_same_forest(faulty, clean);
  double stalled = 0.0;
  for (const auto& s : faulty.run.rank_comm) stalled += s.stall_seconds;
  EXPECT_DOUBLE_EQ(stalled, 0.005);
  EXPECT_GE(faulty.total_seconds, clean.total_seconds + 0.004);
}

TEST(FaultRecoveryTest, SingleCrashIsAdoptedBySurvivor) {
  const graph::EdgeList el = graph::rmat(10, 6000, 11);
  const auto clean = run_with(el, 4, "");
  const auto faulty = run_with(el, 4, "crash=2@1");
  expect_same_forest(faulty, clean);
  std::uint64_t recoveries = 0;
  for (const auto& s : faulty.run.rank_comm) {
    recoveries += s.recoveries;
    EXPECT_EQ(s.checkpoint_bytes > 0, true);
  }
  EXPECT_EQ(recoveries, 1u);
}

TEST(FaultRecoveryTest, RankZeroCrashMovesCollectionRoot) {
  // Rank 0 is the fault-free collection root; its death must hand the
  // forest to the lowest survivor without losing edges.
  const graph::EdgeList el = graph::rmat(10, 6000, 11);
  const auto clean = run_with(el, 4, "");
  expect_same_forest(run_with(el, 4, "crash=0@0"), clean);
  expect_same_forest(run_with(el, 4, "crash=0@99"), clean);  // final cut
}

TEST(FaultRecoveryTest, CascadeCrashesSameCut) {
  // Regression: several ranks dying at the SAME cut. Adopter selection
  // must never pick a same-cut casualty (it would silently drop the
  // checkpoint assigned to it). crash cuts 1 and 2 both fire at the final
  // cut of a 4-rank group-of-4 run, which has exactly cuts 0 and 1.
  const graph::EdgeList el = graph::rmat(10, 6000, 11);
  const auto clean = run_with(el, 4, "");
  const auto faulty = run_with(el, 4, "crash=1@0,crash=2@1,crash=3@2");
  expect_same_forest(faulty, clean);
  std::uint64_t recoveries = 0;
  for (const auto& s : faulty.run.rank_comm) recoveries += s.recoveries;
  EXPECT_EQ(recoveries, 3u);
}

TEST(FaultRecoveryTest, AllButOneCrashTwoRanks) {
  const graph::EdgeList el = graph::erdos_renyi(300, 1200, 5);
  const auto clean = run_with(el, 2, "");
  expect_same_forest(run_with(el, 2, "crash=1@0"), clean);
  expect_same_forest(run_with(el, 2, "crash=0@0"), clean);
}

TEST(FaultRecoveryTest, EverythingAtOnceGpu) {
  // The kitchen sink: message faults + straggler + two crashes on the
  // 8-rank GPU configuration. Forest must still match the clean run.
  const graph::EdgeList el = graph::rmat(11, 12000, 3);
  const auto clean = run_with(el, 8, "", /*gpu=*/true);
  const auto faulty = run_with(
      el, 8,
      "seed=7,drop=0.02,delay=0.05:0.0002,dup=0.02,stall=3@0.001x0.004,"
      "crash=2@1,crash=5@2",
      /*gpu=*/true);
  expect_same_forest(faulty, clean);
}

TEST(FaultRecoveryTest, ReplayIsDeterministic) {
  // Same plan, same graph -> identical forest AND identical virtual-time
  // results, run after run (the whole point of hash-based decisions).
  const graph::EdgeList el = graph::rmat(10, 6000, 11);
  const std::string spec =
      "seed=13,drop=0.03,delay=0.05:0.0003,dup=0.03,crash=1@1";
  const auto a = run_with(el, 4, spec);
  const auto b = run_with(el, 4, spec);
  EXPECT_EQ(a.forest.edges, b.forest.edges);
  EXPECT_DOUBLE_EQ(a.total_seconds, b.total_seconds);
  EXPECT_DOUBLE_EQ(a.comm_seconds, b.comm_seconds);
  ASSERT_EQ(a.run.rank_comm.size(), b.run.rank_comm.size());
  for (std::size_t r = 0; r < a.run.rank_comm.size(); ++r) {
    EXPECT_EQ(a.run.rank_comm[r].retransmissions,
              b.run.rank_comm[r].retransmissions);
    EXPECT_DOUBLE_EQ(a.run.rank_comm[r].retry_backoff_seconds,
                     b.run.rank_comm[r].retry_backoff_seconds);
  }
}

TEST(FaultRecoveryTest, InactivePlanIsByteIdenticalToNoPlan) {
  // seed-only spec configures no faults: the transport must stay on its
  // original code paths, bit-for-bit.
  const graph::EdgeList el = graph::rmat(10, 6000, 11);
  const auto clean = run_with(el, 4, "");
  const auto seeded = run_with(el, 4, "seed=99");
  EXPECT_EQ(clean.forest.edges, seeded.forest.edges);
  EXPECT_DOUBLE_EQ(clean.total_seconds, seeded.total_seconds);
  EXPECT_DOUBLE_EQ(clean.comm_seconds, seeded.comm_seconds);
}

TEST(FaultRecoveryTest, OutOfRangeFaultRanksAreRejected) {
  // crash=2 on a 2-rank run is a typo, not a no-op: it must fail at
  // cluster construction instead of making the run look fault-tolerant.
  const graph::EdgeList el = graph::erdos_renyi(100, 300, 3);
  EXPECT_THROW(run_with(el, 2, "crash=2@0"), CheckFailure);
  EXPECT_THROW(run_with(el, 2, "stall=7@0.001x0.001"), CheckFailure);
}

TEST(FaultRecoveryTest, FaultMetricsAreExported) {
  const graph::EdgeList el = graph::rmat(10, 6000, 11);
  mst::MndMstOptions opts;
  opts.num_nodes = 4;
  opts.collect_metrics = true;
  opts.faults = FaultPlan::parse("seed=9,drop=0.05,crash=2@1");
  const auto report = mst::run_mnd_mst(el, opts);
  const auto merged = report.run.merged_metrics();
  EXPECT_GT(merged.counter("fault.retransmissions"), 0u);
  EXPECT_EQ(merged.counter("fault.recoveries"), 1u);
  EXPECT_GT(merged.counter("fault.checkpoint_bytes"), 0u);
}

}  // namespace
}  // namespace mnd
