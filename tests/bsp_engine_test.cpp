// Unit tests for the BSP worker machinery: all-to-all exchange,
// superstep accounting, request-response lookups with combining /
// mirroring, and partitioning modes.
#include <gtest/gtest.h>

#include "bsp/engine.hpp"
#include "bsp/msf.hpp"
#include "graph/generators.hpp"
#include "simcluster/cluster.hpp"

namespace mnd::bsp {
namespace {

sim::ClusterConfig cluster_of(int ranks) {
  sim::ClusterConfig cfg;
  cfg.num_ranks = ranks;
  return cfg;
}

TEST(BspWorkerTest, ExchangeRoutesMessages) {
  sim::run_cluster(cluster_of(3), [](sim::Communicator& comm) {
    BspWorker worker(comm, device::CpuModel{});
    // Each worker sends its rank*10+dst to every destination.
    std::vector<std::vector<int>> outbox(3);
    for (int dst = 0; dst < 3; ++dst) {
      outbox[static_cast<std::size_t>(dst)].push_back(
          worker.rank() * 10 + dst);
    }
    const auto inbox = worker.exchange(std::move(outbox));
    for (int src = 0; src < 3; ++src) {
      ASSERT_EQ(inbox[static_cast<std::size_t>(src)].size(), 1u);
      EXPECT_EQ(inbox[static_cast<std::size_t>(src)][0],
                src * 10 + worker.rank());
    }
    EXPECT_EQ(worker.supersteps(), 1);
  });
}

TEST(BspWorkerTest, EmptyPayloadsStillSynchronize) {
  sim::run_cluster(cluster_of(4), [](sim::Communicator& comm) {
    BspWorker worker(comm, device::CpuModel{});
    for (int step = 0; step < 5; ++step) {
      std::vector<std::vector<int>> outbox(4);  // all empty
      const auto inbox = worker.exchange(std::move(outbox));
      for (const auto& batch : inbox) EXPECT_TRUE(batch.empty());
    }
    EXPECT_EQ(worker.supersteps(), 5);
  });
}

TEST(BspWorkerTest, SyncSumAggregatesGlobally) {
  sim::run_cluster(cluster_of(5), [](sim::Communicator& comm) {
    BspWorker worker(comm, device::CpuModel{});
    const auto total =
        worker.sync_sum(static_cast<std::uint64_t>(comm.rank() + 1));
    EXPECT_EQ(total, 15u);
  });
}

TEST(BspWorkerTest, ChargeComputeAdvancesClock) {
  sim::run_cluster(cluster_of(1), [](sim::Communicator& comm) {
    BspWorker worker(comm, device::CpuModel{});
    device::KernelWork w;
    w.edges_scanned = 1000000;
    worker.charge_compute(w);
    EXPECT_GT(comm.clock().now(), 0.0);
    EXPECT_GT(comm.phases().get("compute"), 0.0);
  });
}

TEST(QueryOwnersTest, AnswersLocalAndRemoteKeys) {
  sim::run_cluster(cluster_of(4), [](sim::Communicator& comm) {
    BspWorker worker(comm, device::CpuModel{});
    auto owner_of = [](std::uint32_t key) {
      return static_cast<int>(key % 4);
    };
    // Every worker asks for keys 0..19; the owner answers key*3.
    std::vector<std::uint32_t> keys;
    for (std::uint32_t k = 0; k < 20; ++k) keys.push_back(k);
    auto answers = query_owners(
        worker, keys, [](std::uint32_t) { return true; }, owner_of,
        [](std::uint32_t key) { return key * 3; });
    for (std::uint32_t k = 0; k < 20; ++k) {
      ASSERT_NE(answers.find(k), nullptr) << k;
      EXPECT_EQ(*answers.find(k), k * 3);
    }
  });
}

TEST(QueryOwnersTest, CombiningDeduplicatesVolume) {
  // The same key requested many times: with combining one request
  // travels; without, all of them do.
  for (bool combining : {true, false}) {
    std::uint64_t bytes = 0;
    sim::run_cluster(cluster_of(2), [&](sim::Communicator& comm) {
      BspWorker worker(comm, device::CpuModel{});
      std::vector<std::uint32_t> keys(100, 1u);  // all ask for key 1
      auto answers = query_owners(
          worker, keys, [&](std::uint32_t) { return combining; },
          [](std::uint32_t key) { return static_cast<int>(key % 2); },
          [](std::uint32_t key) { return key + 7; });
      EXPECT_EQ(*answers.find(1u), 8u);
      if (comm.rank() == 0) bytes = comm.stats().bytes_sent;
    });
    if (combining) {
      EXPECT_LT(bytes, 200u);
    } else {
      EXPECT_GT(bytes, 400u);  // 100 requests travel
    }
  }
}

TEST(QueryOwnersTest, MirroringThresholdIsPerKey) {
  // Keys below the "degree threshold" travel per requester; keys above
  // are combined — mixed in one call.
  sim::run_cluster(cluster_of(2), [](sim::Communicator& comm) {
    BspWorker worker(comm, device::CpuModel{});
    std::vector<std::uint32_t> keys;
    for (int i = 0; i < 50; ++i) {
      keys.push_back(1);  // "low-degree": not combined
      keys.push_back(3);  // "high-degree": combined
    }
    auto answers = query_owners(
        worker, keys, [](std::uint32_t key) { return key == 3; },
        [](std::uint32_t key) { return static_cast<int>(key % 2); },
        [](std::uint32_t key) { return key * 2; });
    EXPECT_EQ(*answers.find(1u), 2u);
    EXPECT_EQ(*answers.find(3u), 6u);
  });
}

TEST(BspOptionsTest, RangePartitioningMatchesHashResults) {
  const auto el = graph::erdos_renyi(300, 1200, 55);
  BspOptions hash;
  hash.num_workers = 4;
  hash.partitioning = BspPartitioning::Hash;
  BspOptions range;
  range.num_workers = 4;
  range.partitioning = BspPartitioning::Range;
  const auto a = run_bsp_msf(el, hash);
  const auto b = run_bsp_msf(el, range);
  EXPECT_EQ(a.forest.edges, b.forest.edges);
  // Locality-preserving ranges move fewer bytes on this graph family.
  EXPECT_NE(a.run.total_bytes_sent(), b.run.total_bytes_sent());
}

TEST(BspOptionsTest, HashPartitioningCostsMoreOnLocalGraphs) {
  graph::WebGraphParams p;
  p.n = 2048;
  p.target_edges = 16000;
  p.seed = 77;
  const auto el = graph::web_graph(p);
  BspOptions hash;
  hash.num_workers = 8;
  hash.partitioning = BspPartitioning::Hash;
  BspOptions range = hash;
  range.partitioning = BspPartitioning::Range;
  const auto a = run_bsp_msf(el, hash);
  const auto b = run_bsp_msf(el, range);
  EXPECT_GT(a.run.total_bytes_sent(), b.run.total_bytes_sent());
}

TEST(BspDeterminismTest, RepeatRunsAreBitIdentical) {
  const auto el = graph::rmat(9, 3000, 21);
  BspOptions opts;
  opts.num_workers = 8;
  const auto a = run_bsp_msf(el, opts);
  const auto b = run_bsp_msf(el, opts);
  EXPECT_EQ(a.forest.edges, b.forest.edges);
  EXPECT_DOUBLE_EQ(a.total_seconds, b.total_seconds);
  EXPECT_EQ(a.supersteps, b.supersteps);
}

}  // namespace
}  // namespace mnd::bsp
