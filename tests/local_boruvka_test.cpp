// Tests for the indComp kernel: Boruvka with the border-vertex exception.
// Includes the safe-edge property check (every contracted edge is the
// lightest incident edge of some component under the (w,id) order).
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/reference_mst.hpp"
#include "mst/comp_graph.hpp"
#include "mst/local_boruvka.hpp"
#include "util/flat_hash.hpp"

namespace mnd::mst {
namespace {

using graph::Csr;
using graph::EdgeList;

/// Loads every vertex of `el` as a single-vertex component of cg,
/// establishing the Component edge-order invariant.
void load_all(CompGraph& cg, const EdgeList& el) {
  const Csr g = Csr::from_edge_list(el);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    Component c;
    c.id = v;
    for (const auto& arc : g.adjacency(v)) {
      c.edges.push_back(CEdge{arc.to, arc.w, arc.id});
    }
    std::sort(c.edges.begin(), c.edges.end(), graph::EdgeLess{});
    cg.adopt(std::move(c));
  }
}

TEST(LocalBoruvkaTest, CompletesMstWhenAllOwned) {
  const EdgeList el = graph::erdos_renyi(200, 800, 4);
  CompGraph cg;
  load_all(cg, el);
  const BoruvkaStats stats = local_boruvka(cg, nullptr);
  // Connected or not, the forest must match Kruskal exactly.
  const auto ref = graph::kruskal_mst(el);
  std::vector<graph::EdgeId> got = cg.mst_edges();
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, ref.edges);
  EXPECT_EQ(cg.num_components(), ref.num_components);
  EXPECT_EQ(stats.frozen_components, 0u);
  EXPECT_GT(stats.iterations, 0);
}

TEST(LocalBoruvkaTest, PathContractsToOneComponent) {
  const EdgeList el = graph::path_graph(64);
  CompGraph cg;
  load_all(cg, el);
  local_boruvka(cg, nullptr);
  EXPECT_EQ(cg.num_components(), 1u);
  EXPECT_EQ(cg.mst_edges().size(), 63u);
  // The surviving component absorbed everything.
  const VertexId root = cg.component_ids()[0];
  EXPECT_EQ(cg.find(root)->vertex_count, 64u);
  EXPECT_EQ(cg.find(root)->absorbed.size(), 63u);
}

TEST(LocalBoruvkaTest, BorderExceptionFreezesCutComponents) {
  // Two cliques joined by a light bridge; the right clique is "remote".
  const EdgeList el = graph::two_cliques_bridge(8, /*bridge_weight=*/1);
  CompGraph cg;
  load_all(cg, el);
  // Only the left clique participates; vertices 8..15 are border targets.
  // Remove the right clique's components to simulate remote ownership.
  for (VertexId v = 8; v < 16; ++v) cg.erase(v);
  const BoruvkaStats stats =
      local_boruvka(cg, [](VertexId id) { return id < 8; });
  // The bridge endpoint's component must freeze once its lightest edge is
  // the (remote) bridge; everything else inside the clique contracts.
  EXPECT_EQ(cg.num_components(), 1u);
  EXPECT_EQ(stats.frozen_components, 1u);
  EXPECT_EQ(cg.mst_edges().size(), 7u);  // left clique spanning tree only
}

TEST(LocalBoruvkaTest, SafeEdgeProperty) {
  // PROPERTY (paper §3.2): every edge contracted by indComp is the
  // lightest incident edge of one of the two components it merged, under
  // the strict (weight, id) order — i.e. a safe edge by the cut property.
  const EdgeList el = graph::erdos_renyi(60, 240, 11);
  const auto ref = graph::kruskal_mst(el);
  CompGraph cg;
  load_all(cg, el);
  BoruvkaOptions opts;
  opts.max_iterations = 1;  // examine a single round
  local_boruvka(cg, nullptr, opts);
  for (graph::EdgeId committed : cg.mst_edges()) {
    EXPECT_TRUE(std::binary_search(ref.edges.begin(), ref.edges.end(),
                                   committed))
        << "edge " << committed << " is not in the unique MST";
  }
}

TEST(LocalBoruvkaTest, PartitionedHalvesFreezeOnlyAtBoundary) {
  const EdgeList el = graph::path_graph(32);
  CompGraph cg;
  load_all(cg, el);
  // Run on the lower half only.
  const BoruvkaStats stats =
      local_boruvka(cg, [](VertexId id) { return id < 16; });
  // The lower half contracts into one component; its only outgoing edge
  // (15,16) is a cut edge. Upper-half components are untouched.
  std::size_t lower = 0;
  std::size_t upper = 0;
  for (VertexId id : cg.component_ids()) {
    (id < 16 ? lower : upper) += 1;
  }
  EXPECT_EQ(lower, 1u);
  EXPECT_EQ(upper, 16u);
  EXPECT_EQ(stats.frozen_components, 1u);
}

TEST(LocalBoruvkaTest, MutualPairEdgeCommittedOnce) {
  // A single edge: both endpoints pick it (mutual pair).
  EdgeList el(2);
  el.add_edge(0, 1, 5);
  CompGraph cg;
  load_all(cg, el);
  local_boruvka(cg, nullptr);
  EXPECT_EQ(cg.mst_edges().size(), 1u);
  EXPECT_EQ(cg.num_components(), 1u);
  // Smaller id wins the root.
  EXPECT_TRUE(cg.owns(0));
}

TEST(LocalBoruvkaTest, IsolatedComponentsRemain) {
  EdgeList el(5);
  el.add_edge(0, 1, 2);
  // vertices 2,3,4 isolated
  CompGraph cg;
  load_all(cg, el);
  local_boruvka(cg, nullptr);
  EXPECT_EQ(cg.num_components(), 4u);
  EXPECT_TRUE(cg.mst_edges().size() == 1u);
}

TEST(LocalBoruvkaTest, MaxIterationsRespected) {
  const EdgeList el = graph::path_graph(256);
  CompGraph cg;
  load_all(cg, el);
  BoruvkaOptions opts;
  opts.max_iterations = 2;
  const BoruvkaStats stats = local_boruvka(cg, nullptr, opts);
  EXPECT_LE(stats.iterations, 2);
  EXPECT_GT(cg.num_components(), 1u);  // not finished yet
  // Resuming finishes the job and the result is still exact.
  local_boruvka(cg, nullptr);
  EXPECT_EQ(cg.num_components(), 1u);
  std::vector<graph::EdgeId> got = cg.mst_edges();
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, graph::kruskal_mst(el).edges);
}

TEST(LocalBoruvkaTest, DiminishingBenefitStopsEarly) {
  const EdgeList el = graph::path_graph(1024);
  CompGraph cg1;
  load_all(cg1, el);
  BoruvkaOptions high_cut;
  high_cut.min_contraction_fraction = 0.9;  // path halves comps per iter
  const BoruvkaStats s1 = local_boruvka(cg1, nullptr, high_cut);
  CompGraph cg2;
  load_all(cg2, el);
  const BoruvkaStats s2 = local_boruvka(cg2, nullptr);
  EXPECT_LT(s1.iterations, s2.iterations);
}

TEST(LocalBoruvkaTest, WorkCountersPopulated) {
  const EdgeList el = graph::erdos_renyi(100, 500, 6);
  CompGraph cg;
  load_all(cg, el);
  const BoruvkaStats stats = local_boruvka(cg, nullptr);
  const auto total = stats.total_work();
  EXPECT_GT(total.active_vertices, 0u);
  EXPECT_GT(total.edges_scanned, 0u);
  EXPECT_GT(total.atomic_updates, 0u);
  EXPECT_EQ(stats.per_iteration.size(),
            static_cast<std::size_t>(stats.iterations));
  const device::CpuDevice cpu;
  EXPECT_GT(stats.priced_seconds(cpu), 0.0);
}

TEST(LocalBoruvkaTest, CleanAdjacencyRemovesSelfAndMultiEdges) {
  CompGraph cg;
  Component c;
  c.id = 1;
  // Self edge after rename (5 -> 1), plus parallel edges to component 2.
  cg.renames().add(5, 1);
  c.edges = {CEdge{5, 9, 0}, CEdge{2, 7, 1}, CEdge{2, 3, 2}, CEdge{2, 7, 3}};
  cg.adopt(std::move(c));
  const std::size_t scanned = clean_adjacency(cg, *cg.find(1));
  EXPECT_EQ(scanned, 4u);
  const auto& edges = cg.find(1)->edges;
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].to, 2u);
  EXPECT_EQ(edges[0].w, 3u);   // lightest multi-edge kept
  EXPECT_EQ(edges[0].orig, 2u);
}

TEST(LocalBoruvkaTest, TwoDevicePartitionThenMergeMatchesReference) {
  // Simulates the intra-node CPU/GPU split: run the two halves with the
  // device boundary as a border, then a merge pass over everything.
  const EdgeList el = graph::erdos_renyi(120, 480, 13);
  CompGraph cg;
  load_all(cg, el);
  local_boruvka(cg, [](VertexId id) { return id < 60; });
  local_boruvka(cg, [](VertexId id) { return id >= 60; });
  local_boruvka(cg, nullptr);  // device merge
  std::vector<graph::EdgeId> got = cg.mst_edges();
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, graph::kruskal_mst(el).edges);
}

TEST(LocalBoruvkaTest, AbsorbedListsCarryFullHistory) {
  const EdgeList el = graph::path_graph(16);
  CompGraph cg;
  load_all(cg, el);
  local_boruvka(cg, nullptr);
  const VertexId root = cg.component_ids()[0];
  const Component& c = *cg.find(root);
  // absorbed + root = all vertices.
  mnd::FlatHashSet<VertexId> ids;
  ids.insert(root);
  for (VertexId x : c.absorbed) EXPECT_TRUE(ids.insert(x)) << x;
  EXPECT_EQ(ids.size(), 16u);
}

}  // namespace
}  // namespace mnd::mst
