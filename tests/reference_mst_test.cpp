// Tests for the exact reference MST algorithms, including cross-algorithm
// property checks (Kruskal == Prim == Boruvka on the unique (w,id)-MST).
#include <gtest/gtest.h>

#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/reference_mst.hpp"
#include "graph/union_find.hpp"
#include "util/rng.hpp"

namespace mnd::graph {
namespace {

TEST(UnionFindTest, Basics) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_components(), 5u);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(1, 0));
  EXPECT_TRUE(uf.connected(0, 1));
  EXPECT_FALSE(uf.connected(0, 2));
  EXPECT_EQ(uf.component_size(1), 2u);
  EXPECT_EQ(uf.num_components(), 4u);
}

TEST(UnionFindTest, ChainsCompress) {
  UnionFind uf(1000);
  for (VertexId v = 0; v + 1 < 1000; ++v) uf.unite(v, v + 1);
  EXPECT_EQ(uf.num_components(), 1u);
  EXPECT_TRUE(uf.connected(0, 999));
}

TEST(KruskalTest, PathGraph) {
  const EdgeList el = path_graph(10);
  const MstResult r = kruskal_mst(el);
  EXPECT_EQ(r.edges.size(), 9u);
  EXPECT_EQ(r.total_weight, el.total_weight());
  EXPECT_EQ(r.num_components, 1u);
}

TEST(KruskalTest, DisconnectedForest) {
  EdgeList el(6);
  el.add_edge(0, 1, 5);
  el.add_edge(1, 2, 2);
  el.add_edge(0, 2, 9);  // cycle edge, heaviest: excluded
  el.add_edge(4, 5, 1);
  const MstResult r = kruskal_mst(el);
  EXPECT_EQ(r.edges.size(), 3u);
  EXPECT_EQ(r.total_weight, 8u);
  EXPECT_EQ(r.num_components, 3u);  // {0,1,2}, {3}, {4,5}
}

TEST(KruskalTest, TieBreakById) {
  // Two parallel edges with equal weight: the earlier id must win.
  EdgeList el(2);
  const EdgeId first = el.add_edge(0, 1, 7);
  el.add_edge(0, 1, 7);
  const MstResult r = kruskal_mst(el);
  ASSERT_EQ(r.edges.size(), 1u);
  EXPECT_EQ(r.edges[0], first);
}

TEST(KruskalTest, EmptyGraph) {
  EdgeList el(0);
  const MstResult r = kruskal_mst(el);
  EXPECT_TRUE(r.edges.empty());
  EXPECT_EQ(r.num_components, 0u);
}

TEST(KruskalTest, IsolatedVerticesOnly) {
  EdgeList el(5);
  const MstResult r = kruskal_mst(el);
  EXPECT_TRUE(r.edges.empty());
  EXPECT_EQ(r.num_components, 5u);
}

TEST(PrimTest, MatchesKruskalOnRandomGraphs) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const EdgeList el = erdos_renyi(200, 800, seed);
    const Csr g = Csr::from_edge_list(el);
    const MstResult k = kruskal_mst(el);
    const MstResult p = prim_mst(g);
    EXPECT_EQ(p.total_weight, k.total_weight) << "seed " << seed;
    EXPECT_EQ(p.edges.size(), k.edges.size());
    EXPECT_EQ(p.num_components, k.num_components);
  }
}

TEST(PrimTest, ExactEdgeSetMatchesKruskal) {
  // With the strict (w,id) order the MST is unique, so the edge *sets*
  // must be identical, not just the weights.
  const EdgeList el = erdos_renyi(150, 600, 42);
  const Csr g = Csr::from_edge_list(el);
  EXPECT_EQ(prim_mst(g).edges, kruskal_mst(el).edges);
}

TEST(BoruvkaTest, MatchesKruskalOnRandomGraphs) {
  for (std::uint64_t seed = 10; seed < 18; ++seed) {
    const EdgeList el = erdos_renyi(200, 700, seed);
    const Csr g = Csr::from_edge_list(el);
    EXPECT_EQ(boruvka_mst(g).edges, kruskal_mst(el).edges) << seed;
  }
}

TEST(BoruvkaTest, PowerLawGraph) {
  const EdgeList el = rmat(10, 5000, 77);
  const Csr g = Csr::from_edge_list(el);
  EXPECT_EQ(boruvka_mst(g).total_weight, kruskal_mst(el).total_weight);
}

TEST(BoruvkaTest, DuplicateWeights) {
  // All weights equal: correctness must come from id tie-breaking.
  EdgeList el(50);
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const auto u = static_cast<VertexId>(rng.next_below(50));
    const auto v = static_cast<VertexId>(rng.next_below(50));
    if (u != v) el.add_edge(u, v, 7);
  }
  const Csr g = Csr::from_edge_list(el);
  EXPECT_EQ(boruvka_mst(g).edges, kruskal_mst(el).edges);
}

TEST(ValidationTest, AcceptsOptimalForest) {
  const EdgeList el = erdos_renyi(100, 300, 3);
  const MstResult k = kruskal_mst(el);
  EXPECT_TRUE(validate_spanning_forest(el, k.edges).ok);
}

TEST(ValidationTest, RejectsCycle) {
  EdgeList el(3);
  el.add_edge(0, 1, 1);
  el.add_edge(1, 2, 1);
  el.add_edge(0, 2, 1);
  const auto v = validate_spanning_forest(el, {0, 1, 2});
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("cycle"), std::string::npos);
}

TEST(ValidationTest, RejectsNonSpanning) {
  const EdgeList el = path_graph(5);
  const auto v = validate_spanning_forest(el, {0, 1});  // missing 2 edges
  EXPECT_FALSE(v.ok);
}

TEST(ValidationTest, RejectsSuboptimal) {
  EdgeList el(3);
  el.add_edge(0, 1, 1);
  el.add_edge(1, 2, 1);
  el.add_edge(0, 2, 100);
  const auto v = validate_spanning_forest(el, {0, 2});  // uses heavy edge
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("weight"), std::string::npos);
}

TEST(ValidationTest, RejectsDuplicates) {
  const EdgeList el = path_graph(5);
  EXPECT_FALSE(validate_spanning_forest(el, {0, 0, 1, 2}).ok);
}

TEST(ValidationTest, RejectsOutOfRangeId) {
  const EdgeList el = path_graph(3);
  EXPECT_FALSE(validate_spanning_forest(el, {99}).ok);
}

// Parameterized cross-check across graph families.
struct FamilyCase {
  const char* name;
  EdgeList (*make)(std::uint64_t seed);
};

EdgeList make_er(std::uint64_t s) { return erdos_renyi(300, 1500, s); }
EdgeList make_rmat(std::uint64_t s) { return rmat(9, 3000, s); }
EdgeList make_road(std::uint64_t s) {
  return road_grid(20, 18, 0.05, 0.1, s);
}
EdgeList make_web(std::uint64_t s) {
  WebGraphParams p;
  p.n = 512;
  p.target_edges = 4000;
  p.seed = s;
  return web_graph(p);
}

class MstFamilyTest : public ::testing::TestWithParam<FamilyCase> {};

TEST_P(MstFamilyTest, AllThreeAlgorithmsAgree) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const EdgeList el = GetParam().make(seed);
    const Csr g = Csr::from_edge_list(el);
    const MstResult k = kruskal_mst(el);
    EXPECT_EQ(prim_mst(g).edges, k.edges);
    EXPECT_EQ(boruvka_mst(g).edges, k.edges);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, MstFamilyTest,
    ::testing::Values(FamilyCase{"erdos", &make_er},
                      FamilyCase{"rmat", &make_rmat},
                      FamilyCase{"road", &make_road},
                      FamilyCase{"web", &make_web}),
    [](const ::testing::TestParamInfo<FamilyCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace mnd::graph
