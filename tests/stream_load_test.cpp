// Tests for streamed per-rank CSR ingestion (src/hypar/stream_load.hpp),
// the reversible BucketHasher (src/graph/vertex_hash.hpp), the CsrShard
// container, and the streamed run_mnd_mst_streamed entry point: the
// streamed pipeline must reproduce the materialized pipeline exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/mndg.hpp"
#include "graph/vertex_hash.hpp"
#include "hypar/partition.hpp"
#include "hypar/stream_load.hpp"
#include "mst/mnd_mst.hpp"
#include "util/check.hpp"

namespace mnd {
namespace {

std::string encode(const graph::EdgeList& el, std::size_t chunk_edges) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  graph::write_mndg(el, ss, chunk_edges);
  return ss.str();
}

hypar::StreamedGraph stream(const std::string& bytes,
                            const hypar::StreamLoadOptions& opts) {
  std::stringstream ss(bytes,
                       std::ios::in | std::ios::out | std::ios::binary);
  return hypar::stream_load_mndg(ss, opts);
}

// ---- BucketHasher -----------------------------------------------------------

TEST(BucketHasherTest, IsReversiblePermutation) {
  for (const graph::VertexId n : {0u, 1u, 5u, 16u, 17u, 100u, 101u}) {
    for (const int buckets : {1, 2, 3, 7, 16, 200}) {
      const graph::BucketHasher h(n, buckets);
      std::vector<bool> hit(n, false);
      for (graph::VertexId v = 0; v < n; ++v) {
        const graph::VertexId x = h.hash(v);
        ASSERT_LT(x, n) << "n=" << n << " buckets=" << buckets;
        ASSERT_FALSE(hit[x]) << "collision at " << x;
        hit[x] = true;
        ASSERT_EQ(h.unhash(x), v);
        ASSERT_EQ(h.hash(h.unhash(v)), v);
      }
    }
  }
}

TEST(BucketHasherTest, SpreadsConsecutiveIdsAcrossBuckets) {
  const graph::BucketHasher h(100, 4);
  // Consecutive original ids land 25 apart: one per rank-range of 25.
  for (graph::VertexId v = 0; v + 1 < 96; ++v) {
    EXPECT_NE(h.hash(v) / 25, h.hash(v + 1) / 25);
  }
}

TEST(BucketHasherTest, OutOfDomainThrows) {
  const graph::BucketHasher h(10, 2);
  EXPECT_THROW(h.hash(10), CheckFailure);
  EXPECT_THROW(h.unhash(10), CheckFailure);
}

TEST(BucketHasherTest, RelabelPreservesEdgeIdsAndWeights) {
  const graph::EdgeList el = graph::rmat(8, 400, 3);
  const graph::BucketHasher h(el.num_vertices(), 4);
  const graph::EdgeList out = graph::relabel_by_hash(el, h);
  ASSERT_EQ(out.num_edges(), el.num_edges());
  EXPECT_EQ(out.num_vertices(), el.num_vertices());
  for (std::size_t i = 0; i < el.num_edges(); ++i) {
    EXPECT_EQ(out.edge(i).id, el.edge(i).id);
    EXPECT_EQ(out.edge(i).w, el.edge(i).w);
    EXPECT_EQ(h.unhash(out.edge(i).u), el.edge(i).u);
    EXPECT_EQ(h.unhash(out.edge(i).v), el.edge(i).v);
  }
}

// ---- streamed shards vs materialized CSR ------------------------------------

void expect_shards_match_csr(const hypar::StreamedGraph& sg,
                             const graph::Csr& csr) {
  const hypar::Partition1D ref =
      hypar::partition_by_degree(csr, static_cast<int>(sg.shards.size()));
  ASSERT_EQ(sg.part.bounds(), ref.bounds())
      << "streamed cut differs from the materialized cut";
  std::size_t arcs = 0;
  for (const graph::CsrShard& shard : sg.shards) {
    for (graph::VertexId v = shard.lo(); v < shard.hi(); ++v) {
      const auto got = shard.adjacency(v);
      const auto want = csr.adjacency(v);
      ASSERT_EQ(got.size(), want.size()) << "vertex " << v;
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].to, want[i].to) << "vertex " << v;
        EXPECT_EQ(got[i].w, want[i].w) << "vertex " << v;
        EXPECT_EQ(got[i].id, want[i].id) << "vertex " << v;
      }
      arcs += got.size();
    }
  }
  EXPECT_EQ(arcs, sg.num_arcs);
  EXPECT_EQ(arcs, csr.num_arcs());
}

TEST(StreamLoadTest, DegreeShardsMatchGlobalCsr) {
  graph::EdgeList el = graph::erdos_renyi(200, 800, 7);
  el.add_edge(5, 5, 3);  // self loop: dropped by both paths
  const graph::Csr csr = graph::Csr::from_edge_list(el);

  hypar::StreamLoadOptions opts;
  opts.ranks = 4;
  opts.scheme = hypar::PartitionScheme::kDegree;
  const hypar::StreamedGraph sg = stream(encode(el, 128), opts);

  EXPECT_EQ(sg.num_vertices, el.num_vertices());
  EXPECT_EQ(sg.num_edges, el.num_edges());
  expect_shards_match_csr(sg, csr);
}

TEST(StreamLoadTest, HashShardsMatchRelabeledCsr) {
  const graph::EdgeList el = graph::rmat(9, 2000, 13);
  hypar::StreamLoadOptions opts;
  opts.ranks = 4;
  opts.scheme = hypar::PartitionScheme::kHash;
  const hypar::StreamedGraph sg = stream(encode(el, 256), opts);

  // The hashed stream must equal a materialized build of the relabeled
  // list — same cut, same adjacency, same ids.
  const graph::EdgeList relabeled = graph::relabel_by_hash(
      el, graph::BucketHasher(el.num_vertices(), opts.ranks));
  expect_shards_match_csr(sg, graph::Csr::from_edge_list(relabeled));
}

TEST(StreamLoadTest, ChunkSizeDoesNotChangeTheResult) {
  const graph::EdgeList el = graph::erdos_renyi(150, 600, 21);
  hypar::StreamLoadOptions opts;
  opts.ranks = 3;
  const hypar::StreamedGraph a = stream(encode(el, 64), opts);
  const hypar::StreamedGraph b = stream(encode(el, 4096), opts);
  ASSERT_EQ(a.part.bounds(), b.part.bounds());
  EXPECT_EQ(a.num_arcs, b.num_arcs);
  EXPECT_GT(a.file_chunks, b.file_chunks);
}

TEST(StreamLoadTest, TracksPeaksAndBalance) {
  const graph::EdgeList el = graph::erdos_renyi(200, 800, 7);
  hypar::StreamLoadOptions opts;
  opts.ranks = 4;
  const hypar::StreamedGraph sg = stream(encode(el, 128), opts);
  EXPECT_GT(sg.peak_rank_bytes, 0u);
  EXPECT_GE(sg.peak_rank_bytes, sg.shared_peak_bytes);
  EXPECT_GT(sg.file_bytes, 0u);
  EXPECT_GE(sg.balance.arc_imbalance, 1.0);
  EXPECT_GE(sg.balance.vertex_imbalance, 1.0);
}

TEST(StreamLoadTest, MemBudgetViolationThrows) {
  const graph::EdgeList el = graph::erdos_renyi(200, 800, 7);
  hypar::StreamLoadOptions opts;
  opts.ranks = 4;
  opts.mem_budget = 512;  // far below one chunk buffer
  EXPECT_THROW(stream(encode(el, 128), opts), CheckFailure);
}

TEST(StreamLoadTest, GenerousBudgetAdmitsTheLoad) {
  const graph::EdgeList el = graph::erdos_renyi(200, 800, 7);
  hypar::StreamLoadOptions opts;
  opts.ranks = 4;
  opts.mem_budget = 64u << 20;
  const hypar::StreamedGraph sg = stream(encode(el, 128), opts);
  EXPECT_LE(sg.peak_rank_bytes, opts.mem_budget);
}

TEST(StreamLoadTest, CollectEdgesRecoversOriginalEndpoints) {
  const graph::EdgeList el = graph::rmat(8, 500, 31);
  for (const auto scheme :
       {hypar::PartitionScheme::kDegree, hypar::PartitionScheme::kHash}) {
    hypar::StreamLoadOptions opts;
    opts.ranks = 4;
    opts.scheme = scheme;
    const hypar::StreamedGraph sg = stream(encode(el, 128), opts);

    std::vector<graph::EdgeId> ids;
    for (graph::EdgeId id = 0; id < el.num_edges(); id += 7) {
      if (el.edge(id).u != el.edge(id).v) ids.push_back(id);
    }
    const auto got = hypar::collect_edges(sg, ids);
    ASSERT_EQ(got.size(), ids.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      const graph::WeightedEdge& want = el.edge(ids[i]);
      EXPECT_EQ(got[i].id, want.id);
      EXPECT_EQ(got[i].w, want.w);
      const bool same_pair =
          (got[i].u == want.u && got[i].v == want.v) ||
          (got[i].u == want.v && got[i].v == want.u);
      EXPECT_TRUE(same_pair) << "edge " << want.id;
    }
  }
}

// ---- hub skew: what kHash is for --------------------------------------------

TEST(StreamLoadTest, HashPartitionRestoresVertexBalanceOnHubSkew) {
  // Four hub vertices at the front of the id space hold nearly all the
  // degree. The contiguous degree cut gives each hub rank a sliver of
  // vertices; the bucket permutation spreads one hub per rank.
  graph::EdgeList el(1000);
  for (graph::VertexId hub = 0; hub < 4; ++hub) {
    for (graph::VertexId i = 0; i < 200; ++i) {
      el.add_edge(hub, 4 + ((hub * 200 + i * 7) % 996),
                  static_cast<graph::Weight>(1 + hub + i));
    }
  }
  const std::string bytes = encode(el, 256);

  hypar::StreamLoadOptions degree;
  degree.ranks = 4;
  degree.scheme = hypar::PartitionScheme::kDegree;
  hypar::StreamLoadOptions hash = degree;
  hash.scheme = hypar::PartitionScheme::kHash;

  const double degree_imb = stream(bytes, degree).balance.vertex_imbalance;
  const double hash_imb = stream(bytes, hash).balance.vertex_imbalance;
  EXPECT_GT(degree_imb, 1.8);  // some rank holds a hub sliver
  EXPECT_LT(hash_imb, 1.5);
  EXPECT_LT(hash_imb, degree_imb);
}

// ---- end to end: streamed == materialized -----------------------------------

TEST(StreamLoadTest, StreamedForestMatchesMaterialized) {
  const graph::EdgeList el = graph::rmat(10, 4000, 17);
  const std::string bytes = encode(el, 512);

  for (const auto scheme :
       {hypar::PartitionScheme::kDegree, hypar::PartitionScheme::kHash}) {
    mst::MndMstOptions opts;
    opts.num_nodes = 4;
    opts.partition = scheme;

    const mst::MndMstReport mat = mst::run_mnd_mst(el, opts);
    std::stringstream ss(bytes, std::ios::in | std::ios::binary);
    const mst::MndMstReport str = mst::run_mnd_mst_streamed(ss, opts);

    std::vector<graph::EdgeId> a = mat.forest.edges;
    std::vector<graph::EdgeId> b = str.forest.edges;
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << hypar::partition_scheme_name(scheme);
    EXPECT_EQ(str.forest.total_weight, mat.forest.total_weight);
    EXPECT_EQ(str.forest.num_components, mat.forest.num_components);
    EXPECT_GT(str.ingest.file_bytes, 0u);
    EXPECT_GT(str.ingest.read_seconds, 0.0);
  }
}

TEST(StreamLoadTest, ForestIdSetInvariantAcrossSchemes) {
  // (w, id) tie-breaking makes the MSF unique, so the *edge-id set* must
  // not depend on the partition scheme at all.
  const graph::EdgeList el = graph::rmat(9, 3000, 23);
  mst::MndMstOptions opts;
  opts.num_nodes = 4;

  opts.partition = hypar::PartitionScheme::kDegree;
  std::vector<graph::EdgeId> a = mst::run_mnd_mst(el, opts).forest.edges;
  opts.partition = hypar::PartitionScheme::kHash;
  std::vector<graph::EdgeId> b = mst::run_mnd_mst(el, opts).forest.edges;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace mnd
