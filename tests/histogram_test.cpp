// LogHistogram: fixed power-of-two bucket layout, underflow/overflow
// handling, quantile interpolation, and the deterministic element-wise
// fold that makes per-rank histograms mergeable in any order.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "obs/histogram.hpp"
#include "util/thread_pool.hpp"

namespace mnd {
namespace {

using obs::LogHistogram;

TEST(HistogramTest, BucketEdgesArePowersOfTwo) {
  for (int i = 0; i < LogHistogram::kNumBuckets; ++i) {
    EXPECT_DOUBLE_EQ(LogHistogram::bucket_lower(i),
                     std::ldexp(1.0, LogHistogram::kMinExp + i));
    EXPECT_DOUBLE_EQ(LogHistogram::bucket_upper(i),
                     std::ldexp(1.0, LogHistogram::kMinExp + i + 1));
  }
  EXPECT_DOUBLE_EQ(LogHistogram::bucket_lower(0),
                   std::ldexp(1.0, LogHistogram::kMinExp));
  EXPECT_DOUBLE_EQ(
      LogHistogram::bucket_upper(LogHistogram::kNumBuckets - 1),
      std::ldexp(1.0, LogHistogram::kMaxExp));
}

TEST(HistogramTest, BucketIndexAtAndAroundEveryEdge) {
  for (int i = 0; i < LogHistogram::kNumBuckets; ++i) {
    const double lower = LogHistogram::bucket_lower(i);
    // Inclusive lower edge: exactly 2^k lands in bucket i, not i-1.
    EXPECT_EQ(LogHistogram::bucket_index(lower), i) << "edge 2^"
        << (LogHistogram::kMinExp + i);
    // Just below the edge belongs to the previous bucket (or underflow).
    const double below = std::nextafter(lower, 0.0);
    EXPECT_EQ(LogHistogram::bucket_index(below), i - 1);
    // Midpoint stays inside the bucket.
    EXPECT_EQ(LogHistogram::bucket_index(lower * 1.5), i);
  }
}

TEST(HistogramTest, UnderflowAndOverflow) {
  EXPECT_EQ(LogHistogram::bucket_index(0.0), -1);
  EXPECT_EQ(LogHistogram::bucket_index(-1.0), -1);
  EXPECT_EQ(
      LogHistogram::bucket_index(
          std::nextafter(std::ldexp(1.0, LogHistogram::kMinExp), 0.0)),
      -1);
  EXPECT_EQ(LogHistogram::bucket_index(std::ldexp(1.0, LogHistogram::kMaxExp)),
            LogHistogram::kNumBuckets);

  LogHistogram h;
  h.observe(0.0);                                    // underflow
  h.observe(std::ldexp(1.0, LogHistogram::kMinExp - 3));  // underflow
  h.observe(std::ldexp(1.0, LogHistogram::kMaxExp + 2));  // overflow
  h.observe(1.0);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.underflow(), 2u);
  EXPECT_EQ(h.overflow(), 1u);
  // Underflow samples resolve to 0.0; overflow to the tracked max.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0),
                   std::ldexp(1.0, LogHistogram::kMaxExp + 2));
}

TEST(HistogramTest, QuantilesInterpolateInsideTheCoveringBucket) {
  LogHistogram h;
  for (int i = 0; i < 100; ++i) h.observe(1.5);  // bucket [1, 2)
  // All mass in one bucket: every quantile interpolates inside [1, 2).
  for (double q : {0.01, 0.5, 0.95, 0.99}) {
    EXPECT_GE(h.quantile(q), 1.0);
    EXPECT_LT(h.quantile(q), 2.0);
  }
  // p50 of {1 sample at ~1, 1 sample at ~1000} resolves within the low
  // bucket (interpolation may land on its exclusive upper edge); the top
  // quantile resolves within the high bucket [512, 1024).
  LogHistogram two;
  two.observe(1.1);
  two.observe(1000.0);
  EXPECT_LE(two.p50(), 2.0);
  EXPECT_GE(two.quantile(1.0), 512.0);
}

TEST(HistogramTest, EmptyHistogramIsAllZero) {
  const LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.p50(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
}

/// The fold is element-wise count addition on a fixed layout, so any
/// partition of the samples into any number of histograms, merged in any
/// order, yields bit-identical counts and quantiles.
TEST(HistogramTest, FoldIsDeterministicAcrossPartitionAndMergeOrder) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> dist(1e-9, 10.0);
  std::vector<double> samples(1000);
  for (double& s : samples) s = dist(rng);

  LogHistogram serial;
  for (double s : samples) serial.observe(s);

  for (std::size_t parts : {2u, 3u, 8u}) {
    std::vector<LogHistogram> shards(parts);
    for (std::size_t i = 0; i < samples.size(); ++i) {
      shards[i % parts].observe(samples[i]);
    }
    // Merge in ascending and descending shard order; both must agree
    // with the serial histogram exactly.
    for (bool reverse : {false, true}) {
      std::vector<LogHistogram> order = shards;
      if (reverse) std::reverse(order.begin(), order.end());
      LogHistogram folded;
      for (const LogHistogram& s : order) folded.merge(s);
      ASSERT_EQ(folded.count(), serial.count());
      for (int b = 0; b < LogHistogram::kNumBuckets; ++b) {
        ASSERT_EQ(folded.bucket_count(b), serial.bucket_count(b));
      }
      EXPECT_EQ(folded.underflow(), serial.underflow());
      EXPECT_EQ(folded.overflow(), serial.overflow());
      for (double q : {0.5, 0.95, 0.99}) {
        // Bit-identical, not just close: quantiles are a pure function
        // of the folded integer counts.
        EXPECT_EQ(folded.quantile(q), serial.quantile(q));
      }
    }
  }
}

/// Shards filled concurrently (one per pool thread) then folded must give
/// the same result as serial observation — the per-rank histograms in the
/// simulated cluster are exactly this pattern.
TEST(HistogramTest, ConcurrentShardsFoldToSerialResult) {
  std::vector<double> samples(4096);
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> dist(1e-12, 1e6);
  for (double& s : samples) s = dist(rng);

  LogHistogram serial;
  for (double s : samples) serial.observe(s);

  constexpr std::size_t kShards = 8;
  std::vector<LogHistogram> shards(kShards);
  ThreadPool pool(kShards);
  pool.parallel_chunks(
      0, kShards, kShards,
      [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t shard = begin; shard < end; ++shard) {
          for (std::size_t i = shard; i < samples.size(); i += kShards) {
            shards[shard].observe(samples[i]);
          }
        }
      });
  LogHistogram folded;
  for (const LogHistogram& s : shards) folded.merge(s);
  EXPECT_EQ(folded.count(), serial.count());
  for (int b = 0; b < LogHistogram::kNumBuckets; ++b) {
    EXPECT_EQ(folded.bucket_count(b), serial.bucket_count(b));
  }
  EXPECT_EQ(folded.p99(), serial.p99());
}

}  // namespace
}  // namespace mnd
