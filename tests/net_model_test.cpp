// NetModel: the LogGP cost arithmetic the whole simulated cluster prices
// communication with, and the three hardware presets the experiments use.
#include <gtest/gtest.h>

#include "simcluster/net_model.hpp"

namespace mnd::sim {
namespace {

TEST(NetModelTest, SendOccupancyIsOverheadPlusGap) {
  NetModel m;
  m.overhead = 3e-6;
  m.gap_per_byte = 2e-9;
  EXPECT_DOUBLE_EQ(m.send_occupancy(0), 3e-6);
  EXPECT_DOUBLE_EQ(m.send_occupancy(1000), 3e-6 + 1000 * 2e-9);
}

TEST(NetModelTest, ArrivalIsLatencyPlusBandwidthTerm) {
  NetModel m;
  m.latency = 10e-6;
  m.overhead = 2e-6;
  m.seconds_per_byte = 1e-9;
  // sent at t: arrives at t + o + L + b*G.
  EXPECT_DOUBLE_EQ(m.arrival(0.5, 0), 0.5 + 2e-6 + 10e-6);
  EXPECT_DOUBLE_EQ(m.arrival(0.5, 4096), 0.5 + 2e-6 + 10e-6 + 4096 * 1e-9);
  // Arrival is affine in send time: shifting the send shifts the arrival.
  EXPECT_DOUBLE_EQ(m.arrival(1.5, 4096) - m.arrival(0.5, 4096), 1.0);
}

TEST(NetModelTest, RecvOccupancyIsOverheadOnly) {
  NetModel m;
  m.overhead = 7e-6;
  EXPECT_DOUBLE_EQ(m.recv_occupancy(), 7e-6);
}

TEST(NetModelTest, ForDataScaleShrinksOnlyFixedCosts) {
  const NetModel base = NetModel::amd_cluster();
  const NetModel scaled = base.for_data_scale(4000.0);
  EXPECT_DOUBLE_EQ(scaled.latency, base.latency / 4000.0);
  EXPECT_DOUBLE_EQ(scaled.overhead, base.overhead / 4000.0);
  // Byte-proportional costs shrink with the data itself — untouched.
  EXPECT_DOUBLE_EQ(scaled.gap_per_byte, base.gap_per_byte);
  EXPECT_DOUBLE_EQ(scaled.seconds_per_byte, base.seconds_per_byte);
}

TEST(NetModelTest, AmdClusterPreset) {
  const NetModel m = NetModel::amd_cluster();
  EXPECT_DOUBLE_EQ(m.latency, 50e-6);
  EXPECT_DOUBLE_EQ(m.overhead, 5e-6);
  EXPECT_DOUBLE_EQ(m.seconds_per_byte, 1.0 / 118.0e6);
  EXPECT_DOUBLE_EQ(m.gap_per_byte, m.seconds_per_byte);
}

TEST(NetModelTest, HadoopRpcIsStrictlySlowerThanMpiOnSameWires) {
  // Same cluster, heavier messaging layer: every cost component of the
  // Pregel+ (Hadoop RPC) view must dominate the MPI view — this gap is
  // part of what the paper measures.
  const NetModel mpi = NetModel::amd_cluster();
  const NetModel rpc = NetModel::amd_cluster_hadoop_rpc();
  EXPECT_GT(rpc.latency, mpi.latency);
  EXPECT_GT(rpc.overhead, mpi.overhead);
  EXPECT_GT(rpc.seconds_per_byte, mpi.seconds_per_byte);
  EXPECT_GT(rpc.arrival(0.0, 1 << 20), mpi.arrival(0.0, 1 << 20));
}

TEST(NetModelTest, CrayXc40IsFastestPreset) {
  const NetModel cray = NetModel::cray_xc40();
  const NetModel amd = NetModel::amd_cluster();
  EXPECT_DOUBLE_EQ(cray.latency, 2e-6);
  EXPECT_DOUBLE_EQ(cray.overhead, 1e-6);
  EXPECT_DOUBLE_EQ(cray.seconds_per_byte, 1.0 / 8.0e9);
  EXPECT_LT(cray.arrival(0.0, 1 << 20), amd.arrival(0.0, 1 << 20));
  EXPECT_LT(cray.send_occupancy(1 << 20), amd.send_occupancy(1 << 20));
}

TEST(NetModelTest, LargeMessagesAreBandwidthBoundSmallLatencyBound) {
  const NetModel m = NetModel::amd_cluster();
  // 1 MiB at ~118 MB/s: the byte term dwarfs L+o.
  const double big = m.arrival(0.0, 1 << 20);
  EXPECT_GT((1 << 20) * m.seconds_per_byte / big, 0.99);
  // 8 bytes: fixed costs dominate.
  const double small = m.arrival(0.0, 8);
  EXPECT_GT((m.latency + m.overhead) / small, 0.99);
}

}  // namespace
}  // namespace mnd::sim
