// Exemption fixture: src/util/thread_pool.cpp is the sanctioned home of
// raw std::thread — the pool implementation itself.
#include <thread>

namespace mnd::fixture {

inline void worker() {
  std::thread t([] {});  // exempt: the pool owns its workers
  t.join();
}

}  // namespace mnd::fixture
