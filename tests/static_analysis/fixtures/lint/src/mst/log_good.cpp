// Known-good twin of log_bad.cpp: output through the sanctioned sink.
#include "util/logging.hpp"

namespace mnd::fixture {

inline void speak(int rank) { MND_LOG(rank) << "through the sink"; }

}  // namespace mnd::fixture
