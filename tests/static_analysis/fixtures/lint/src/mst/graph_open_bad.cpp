// Known-bad: engine code opening graph bytes directly instead of going
// through the graph/io.hpp helpers (rule-8 / graph-io). Raw opens skip
// the .mndg hardening (magic/version/checksum checks) and the ingest
// accounting, so they are banned everywhere in src/ except
// src/graph/io.cpp.
#include <cstdio>
#include <fstream>

namespace mnd::fixture {

inline int load_sneakily() {
  std::ifstream in("graph.mndg", std::ios::binary);  // EXPECT-mnd(rule-8)
  int v = 0;
  in >> v;
  std::fstream rw("graph.tmp");  // EXPECT-mnd(graph-io)
  FILE* f = fopen("graph.bin", "rb");  // EXPECT-mnd(rule-8)
  if (f) {
    f = freopen("graph2.bin", "rb", f);  // EXPECT-mnd(rule-8)
  }
  if (f) {
    fclose(f);
  }
  return v;
}

}  // namespace mnd::fixture
