// Exemption fixture: src/mst/comp_graph.cpp is where the framed wire
// helpers live, so raw Serializer writes are allowed here.
#include "util/serialize.hpp"

namespace mnd::fixture {

inline void frame(mnd::Serializer& s) {
  s.put<unsigned>(0x4D4E4431u);  // exempt: this file defines the framing
  s.put_varint(42u);
}

}  // namespace mnd::fixture
