// Known-bad: header whose first code line is not #pragma once.
#include <vector>  // EXPECT-mnd(rule-4)

namespace mnd::fixture {
using Ids = std::vector<int>;
}  // namespace mnd::fixture
