// Known-bad: raw thread spawns outside the pool / rank launcher.
#include <future>
#include <thread>

namespace mnd::fixture {

inline void spawn() {
  std::thread t([] {});             // EXPECT-mnd(rule-5)
  t.join();
  auto f = std::async([] {});       // EXPECT-mnd(threading)
  f.wait();
}

}  // namespace mnd::fixture
