// Known-bad: direct comparison sorts over edge records in MST code must
// route through graph::radix_sort (rule-11). Covers the same-line form,
// the comparator-on-the-next-line form, stable_sort, and .edges members.
#include <algorithm>
#include <vector>

namespace mnd::fixture {

struct WeightedEdge { unsigned from, to, w; };
struct CEdge { unsigned to, w, orig; };
struct Forest { std::vector<unsigned> edges; };

inline bool edge_less(const WeightedEdge& a, const WeightedEdge& b) {
  return a.w < b.w;
}

inline void sort_edges(std::vector<WeightedEdge>& es,
                       std::vector<CEdge>& ces, Forest& f) {
  std::sort(es.begin(), es.end(), edge_less);  // EXPECT-mnd(rule-11)
  std::sort(ces.begin(), ces.end(),  // EXPECT-mnd(rule-11)
            [](const CEdge& a, const CEdge& b) {
              return a.w < b.w;
            });
  std::stable_sort(es.begin(), es.end(),  // EXPECT-mnd(edge-sort)
                   [](const WeightedEdge& a, const WeightedEdge& b) {
                     return a.to < b.to;
                   });
  std::sort(f.edges.begin(), f.edges.end());  // EXPECT-mnd(rule-11)
}

}  // namespace mnd::fixture
