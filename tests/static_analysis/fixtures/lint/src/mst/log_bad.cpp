// Known-bad: direct output from engine code bypasses the logging sink.
#include <cstdio>
#include <iostream>

namespace mnd::fixture {

inline void shout() {
  std::cout << "direct stdout\n";  // EXPECT-mnd(rule-2)
  std::cerr << "direct stderr\n";  // EXPECT-mnd(rule-2)
  printf("printf output\n");       // EXPECT-mnd(logging)
  puts("puts output");             // EXPECT-mnd(rule-2)
}

}  // namespace mnd::fixture
