// Suppression fixture: justified NOLINT-mnd comments must keep this file
// clean in both same-line and next-line forms.
#include <iostream>
#include <thread>

namespace mnd::fixture {

inline void pinned() {
  std::thread probe([] {});  // NOLINT-mnd(rule-5): fixture: sanctioned probe
  probe.join();
  // NOLINTNEXTLINE-mnd(logging): fixture: direct output is intentional here
  std::cout << "suppressed";
}

}  // namespace mnd::fixture
