// Known-good twin: the file comment may precede #pragma once.
#pragma once

#include <vector>

namespace mnd::fixture {
using Ids = std::vector<int>;
}  // namespace mnd::fixture
