// Known-good twin for rule-11: sorts of vertex-id and arc vectors are
// not edge sorts and must stay clean, and a justified NOLINT-mnd keeps a
// deliberate edge sort quiet. No unmarked line here may fire.
#include <algorithm>
#include <cstdint>
#include <vector>

namespace mnd::fixture {

struct SampleEdge { unsigned to, w, orig; };
struct Arc { unsigned to, w; };

inline bool arc_less(const Arc& a, const Arc& b) { return a.to < b.to; }

inline void sort_non_edges(std::vector<std::uint32_t>& verts,
                           std::vector<Arc>& arcs,
                           std::vector<SampleEdge>& sample) {
  std::sort(verts.begin(), verts.end());
  std::stable_sort(arcs.begin(), arcs.end(), arc_less);
  // Ordered by the unique orig id for dedup, not the edge total order.
  std::sort(sample.begin(), sample.end(),  // NOLINT-mnd(rule-11)
            [](const SampleEdge& a, const SampleEdge& b) {
              return a.orig < b.orig;
            });
}

}  // namespace mnd::fixture
