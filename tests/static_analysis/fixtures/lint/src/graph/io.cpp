// Known-good twin for rule-8: src/graph/io.cpp is the single sanctioned
// ingestion point, so raw file opens here are exempt. No EXPECT markers
// — the selftest fails if rule-8 overfires on this path.
#include <cstdio>
#include <fstream>

namespace mnd::fixture {

inline int open_graph_bytes() {
  std::ifstream in("graph.mndg", std::ios::binary);
  int v = 0;
  in >> v;
  FILE* f = fopen("graph.bin", "rb");
  if (f) {
    fclose(f);
  }
  return v;
}

}  // namespace mnd::fixture
