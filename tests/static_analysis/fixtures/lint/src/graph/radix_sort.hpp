#pragma once
// Known-good twin for rule-11: src/graph/radix_sort.hpp IS the edge-sort
// module, so its internal std::sort fallbacks (sub-cutoff arrays, per-
// bucket tails) are exempt. No EXPECT markers — the selftest fails if
// rule-11 overfires on this path.
#include <algorithm>
#include <vector>

namespace mnd::fixture {

struct WeightedEdge { unsigned from, to, w; };

inline void small_fallback(std::vector<WeightedEdge>& es) {
  std::sort(es.begin(), es.end(),
            [](const WeightedEdge& a, const WeightedEdge& b) {
              return a.w < b.w;
            });
}

}  // namespace mnd::fixture
