// Scope fixture: the BSP baseline is exempt from the wire rule by design
// (it models the paper's baseline, not the framed MND transport).
#include "util/serialize.hpp"

namespace mnd::fixture {

inline void baseline(mnd::Serializer& s) {
  s.put<unsigned>(1);  // out of rule-6 scope: src/bsp
}

}  // namespace mnd::fixture
