// Known-bad: engine code building transport payloads with raw Serializer
// writes instead of the framed helpers (DESIGN.md §5d).
#include "util/serialize.hpp"

namespace mnd::fixture {

inline void leak(mnd::Serializer& s) {
  s.put<unsigned>(7);            // EXPECT-mnd(rule-6)
  s.put_vector(nullptr);         // EXPECT-mnd(wire)
  s.put_string("oops");          // EXPECT-mnd(rule-6)
  s.put_varint(99u);             // EXPECT-mnd(rule-6)
}

}  // namespace mnd::fixture
