// Known-good twin: payloads go through the framed entry point so the wire
// magic and bytes accounting apply.
#include "util/serialize.hpp"

namespace mnd::fixture {

inline void framed(mnd::Serializer& s, const std::vector<unsigned>& ids) {
  s.put_id_vector(ids);  // sanctioned framed helper
}

}  // namespace mnd::fixture
