// Known-bad: obs code picking its own output destination. Exporters take
// a caller-provided std::ostream& instead.
#include <cstdio>
#include <fstream>

namespace mnd::fixture {

inline void dump() {
  std::ofstream out("metrics.csv");   // EXPECT-mnd(rule-7,rule-8)
  out << 1;
  FILE* f = fopen("metrics.bin", "w");  // EXPECT-mnd(obs-discipline,graph-io)
  if (f) {
    fclose(f);
  }
}

}  // namespace mnd::fixture
