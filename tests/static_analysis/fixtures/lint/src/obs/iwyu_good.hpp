// Known-good twin: owning headers included directly; <iosfwd> is the
// sanctioned provider for streams that are only referenced.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

namespace mnd::fixture {

struct Sample {
  std::vector<int> xs;
  std::uint64_t stamp = 0;
};

void render(const Sample& s, std::ostream& os);

}  // namespace mnd::fixture
