// Known-bad: names std symbols without including their owning headers.
#pragma once

namespace mnd::fixture {

struct Sample {
  std::vector<int> xs;     // EXPECT-mnd(rule-3)
  std::uint64_t stamp = 0;  // EXPECT-mnd(iwyu-obs)
};

}  // namespace mnd::fixture
