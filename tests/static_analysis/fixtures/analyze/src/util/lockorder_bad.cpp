// Known-bad: a lock-order cycle built through an interprocedural edge
// (alpha held while calling a function that takes beta) against a direct
// beta->alpha nesting, plus a direct re-acquisition self-deadlock.
#include <mutex>

namespace mnd::fixture {

inline std::mutex alpha_mu;
inline std::mutex beta_mu;
inline std::mutex gamma_mu;

inline void locks_beta_inner() { std::lock_guard<std::mutex> b(beta_mu); }

inline void alpha_then_calls_beta() {
  std::lock_guard<std::mutex> a(alpha_mu);
  locks_beta_inner();  // EXPECT-mnd(rule-9)
}

inline void beta_then_alpha() {
  std::lock_guard<std::mutex> b(beta_mu);
  std::lock_guard<std::mutex> a(alpha_mu);
}

inline void reacquire() {
  std::lock_guard<std::mutex> g1(gamma_mu);
  std::lock_guard<std::mutex> g2(gamma_mu);  // EXPECT-mnd(lock-order)
}

}  // namespace mnd::fixture
