// Known-good twin: consistent nesting order everywhere — the graph has
// edges but no cycle. RAII scoping matters: the second function releases
// its guard before taking the next mutex.
#include <mutex>

namespace mnd::fixture {

inline std::mutex ordered_outer_mu;
inline std::mutex ordered_inner_mu;

inline void nest_consistently() {
  std::lock_guard<std::mutex> a(ordered_outer_mu);
  std::lock_guard<std::mutex> b(ordered_inner_mu);
}

inline void nest_consistently_again() {
  {
    std::lock_guard<std::mutex> a(ordered_outer_mu);
    std::lock_guard<std::mutex> b(ordered_inner_mu);
  }
  // Released above: taking inner alone creates no reverse edge.
  std::lock_guard<std::mutex> only(ordered_inner_mu);
}

}  // namespace mnd::fixture
