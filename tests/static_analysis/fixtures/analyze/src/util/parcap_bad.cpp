// Known-bad: parallel_chunks lambdas mutating by-reference captures with
// no atomic, shard, or lock — cross-chunk data races.
#include <cstddef>
#include <vector>

#include "util/thread_pool.hpp"

namespace mnd::fixture {

inline void racy(mnd::util::ThreadPool& pool, std::vector<int>& vals,
                 std::vector<int>& out) {
  std::size_t total = 0;
  bool flag = false;
  pool.parallel_chunks(
      0, vals.size(), 4,
      [&](std::size_t part, std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          total += static_cast<std::size_t>(vals[i]);  // EXPECT-mnd(rule-10)
          out.push_back(static_cast<int>(i));  // EXPECT-mnd(rule-10)
        }
        flag = true;  // EXPECT-mnd(parallel-capture)
      });
  (void)total;
  (void)flag;
}

}  // namespace mnd::fixture
