// Known-good twin: every sanctioned mutation shape from the real kernels
// (csr.cpp, local_boruvka.cpp) — atomics, chunk-indexed slots, fetch_add
// slots, per-chunk shards, lambda-locals, and lock-guarded merges.
#include <atomic>
#include <cstddef>
#include <mutex>
#include <vector>

#include "util/thread_pool.hpp"

namespace mnd::fixture {

inline void sharded(mnd::util::ThreadPool& pool, std::vector<int>& vals,
                    std::vector<int>& out,
                    std::vector<std::vector<int>>& shards) {
  std::atomic<std::size_t> total{0};
  std::atomic<std::size_t> cursor{0};
  std::mutex mu;
  std::vector<int> merged;
  pool.parallel_chunks(
      0, vals.size(), 4,
      [&](std::size_t part, std::size_t lo, std::size_t hi) {
        std::size_t local_sum = 0;  // lambda-local accumulator
        auto& shard = shards[part];
        for (std::size_t i = lo; i < hi; ++i) {
          local_sum += static_cast<std::size_t>(vals[i]);
          out[i] = vals[i];  // slot indexed by a chunk-local: unique
          shard.push_back(vals[i]);  // per-chunk shard
          out[cursor.fetch_add(1)] = vals[i];  // fetch_add slot: unique
        }
        total.fetch_add(local_sum);  // atomic fold
        {
          std::lock_guard<std::mutex> g(mu);
          merged.push_back(static_cast<int>(part));  // guarded merge
        }
      });
}

}  // namespace mnd::fixture
