// Known-good twin: virtual clocks and seeded RNGs. `virtual_time` and a
// member called `rand` must NOT trip the symbol-resolved rule — these are
// exactly the shapes the old substring regex needed lookbehinds for.
#include <random>

namespace mnd::fixture {

struct Comm {
  long virtual_time() const { return 0; }
};

struct Rng {
  explicit Rng(unsigned seed) : gen(seed) {}
  unsigned rand() { return static_cast<unsigned>(gen()); }
  std::mt19937 gen;
};

inline long good(const Comm& comm, unsigned seed) {
  Rng rng(seed);          // seeded explicitly by the caller
  long t = comm.virtual_time();
  return t + rng.rand();  // member access, not the C library
}

}  // namespace mnd::fixture
