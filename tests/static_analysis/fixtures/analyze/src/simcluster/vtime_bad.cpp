// Known-bad: wall-clock reads and unseeded randomness inside the
// virtual-time layers (src/simcluster|hypar|bsp).
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace mnd::fixture {

inline long bad_clocks() {
  auto t0 = std::chrono::system_clock::now();       // EXPECT-mnd(rule-1)
  auto t1 = std::chrono::steady_clock::now();       // EXPECT-mnd(rule-1)
  auto t2 = std::chrono::high_resolution_clock::now();  // EXPECT-mnd(rule-1)
  (void)t0;
  (void)t1;
  (void)t2;
  return time(nullptr);                             // EXPECT-mnd(rule-1)
}

inline int bad_random() {
  std::srand(7);                                    // EXPECT-mnd(rule-1)
  std::random_device rd;                            // EXPECT-mnd(vtime-purity)
  (void)rd;
  return rand();                                    // EXPECT-mnd(rule-1)
}

}  // namespace mnd::fixture
