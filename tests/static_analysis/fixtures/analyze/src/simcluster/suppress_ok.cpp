// Suppression fixture: justified wall-clock use stays clean under both
// same-line and next-line NOLINT-mnd forms.
#include <ctime>
#include <random>

namespace mnd::fixture {

inline unsigned demo_seed() {
  std::random_device rd;  // NOLINT-mnd(rule-1): fixture: demo seed source
  return rd();
}

// NOLINTNEXTLINE-mnd(vtime-purity): fixture: name-based suppression form
inline long demo_time() { return time(nullptr); }

}  // namespace mnd::fixture
