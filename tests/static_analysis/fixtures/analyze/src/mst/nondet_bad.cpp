// Known-bad: hash-iteration order escaping into output — serialization,
// communication, metrics folds, unsorted appends, float accumulation.
#include <unordered_map>
#include <vector>

#include "util/flat_hash.hpp"

namespace mnd::fixture {

struct Serializer {
  void put_u32(unsigned v);
};
struct Comm {
  void send(int dst, int payload);
};
struct Metrics {
  void counter(int key);
};

inline void escapes(mnd::FlatHashMap<int, int>& m, Serializer& s, Comm& comm,
                    Metrics& reg, std::vector<int>& out) {
  double total_w = 0;
  m.for_each([&](int k, int v) {
    s.put_u32(static_cast<unsigned>(v));  // EXPECT-mnd(rule-8)
  });
  m.for_each([&](int k, int v) {
    out.push_back(v);  // EXPECT-mnd(rule-8)
  });
  m.for_each([&](int k, int v) {
    total_w += v;  // EXPECT-mnd(nondet-iter)
  });
  (void)total_w;

  std::unordered_map<int, int> pending;
  for (const auto& kv : pending) {
    comm.send(kv.first, kv.second);  // EXPECT-mnd(rule-8)
  }
  for (const auto& kv : pending) {
    reg.counter(kv.first);  // EXPECT-mnd(rule-8)
  }
}

}  // namespace mnd::fixture
