// Scope fixture: rule-1 only covers the virtual-time layers. Wall-clock
// reads in src/mst (e.g. the profiler's real timers) are allowed.
#include <chrono>

namespace mnd::fixture {

inline long real_timer() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace mnd::fixture
