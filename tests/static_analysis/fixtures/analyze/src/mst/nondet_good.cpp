// Known-good twin: the commutative and sort-after shapes the real code
// uses (comp_graph, ghost, engine) — none of these may fire.
#include <algorithm>
#include <cstddef>
#include <vector>

#include "util/flat_hash.hpp"

namespace mnd::fixture {

inline void disciplined(mnd::FlatHashMap<int, int>& m,
                        std::vector<int>& out,
                        std::vector<std::vector<int>>& buckets) {
  // Append then canonicalize: the later sort makes the order irrelevant.
  std::size_t count = 0;
  m.for_each([&](int k, int v) {
    out.push_back(v);
    count += 1;  // integral sum: commutative, exact
  });
  std::sort(out.begin(), out.end());
  (void)count;

  // Unordered into unordered: layout-independent.
  mnd::FlatHashSet<int> seen;
  m.for_each([&](int k, int v) { seen.insert(v); });

  // Appends canonicalized through a ranged-for alias, like the query
  // buckets in hypar/engine.cpp.
  m.for_each([&](int k, int v) {
    buckets[static_cast<std::size_t>(v) % buckets.size()].push_back(v);
  });
  for (auto& b : buckets) {
    std::sort(b.begin(), b.end());
  }

  // Body-local storage never leaks iteration order.
  m.for_each([&](int k, int v) {
    std::vector<int> tmp;
    tmp.push_back(v);
  });
}

}  // namespace mnd::fixture
