// Integration tests: full MND-MST runs validated against exact Kruskal.
#include <gtest/gtest.h>

#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "graph/reference_mst.hpp"
#include "mst/mnd_mst.hpp"
#include "obs/trace.hpp"

namespace mnd {
namespace {

using graph::EdgeList;

void expect_optimal(const EdgeList& el, const mst::MndMstReport& report) {
  const auto validation =
      graph::validate_spanning_forest(el, report.forest.edges);
  EXPECT_TRUE(validation.ok) << validation.error;
}

mst::MndMstOptions base_options(int nodes) {
  mst::MndMstOptions opts;
  opts.num_nodes = nodes;
  return opts;
}

TEST(MndMstTest, SingleNodePath) {
  const EdgeList el = graph::path_graph(50);
  const auto report = mst::run_mnd_mst(el, base_options(1));
  expect_optimal(el, report);
  EXPECT_EQ(report.forest.edges.size(), 49u);
}

TEST(MndMstTest, TwoNodesPath) {
  const EdgeList el = graph::path_graph(64);
  const auto report = mst::run_mnd_mst(el, base_options(2));
  expect_optimal(el, report);
}

TEST(MndMstTest, FourNodesErdosRenyi) {
  const EdgeList el = graph::erdos_renyi(500, 2000, 7);
  const auto report = mst::run_mnd_mst(el, base_options(4));
  expect_optimal(el, report);
}

TEST(MndMstTest, SixteenNodesRmat) {
  const EdgeList el = graph::rmat(10, 6000, 11);
  const auto report = mst::run_mnd_mst(el, base_options(16));
  expect_optimal(el, report);
}

TEST(MndMstTest, DisconnectedGraph) {
  // Two cliques with NO bridge: spanning forest with 2 components.
  EdgeList el = graph::two_cliques_bridge(20, 1);
  // Remove the bridge by rebuilding without the final edge.
  EdgeList no_bridge(el.num_vertices());
  for (const auto& e : el.edges()) {
    if (!((e.u == 0 && e.v == 20))) no_bridge.add_edge(e.u, e.v, e.w);
  }
  const auto report = mst::run_mnd_mst(no_bridge, base_options(4));
  expect_optimal(no_bridge, report);
  EXPECT_EQ(report.forest.num_components, 2u);
}

TEST(MndMstTest, GpuModeMatchesCpuResult) {
  const EdgeList el = graph::rmat(11, 12000, 3);
  auto opts = base_options(4);
  const auto cpu_report = mst::run_mnd_mst(el, opts);
  opts.engine.use_gpu = true;
  const auto gpu_report = mst::run_mnd_mst(el, opts);
  expect_optimal(el, cpu_report);
  expect_optimal(el, gpu_report);
  EXPECT_EQ(cpu_report.forest.total_weight, gpu_report.forest.total_weight);
}

TEST(MndMstTest, DeterministicAcrossRuns) {
  const EdgeList el = graph::rmat(10, 5000, 5);
  const auto a = mst::run_mnd_mst(el, base_options(8));
  const auto b = mst::run_mnd_mst(el, base_options(8));
  EXPECT_EQ(a.forest.edges, b.forest.edges);
  EXPECT_DOUBLE_EQ(a.total_seconds, b.total_seconds);
  EXPECT_DOUBLE_EQ(a.comm_seconds, b.comm_seconds);
}

TEST(MndMstTest, RoadDatasetStandInSmallScale) {
  const EdgeList el = graph::make_dataset("road_usa", 0.05);
  const auto report = mst::run_mnd_mst(el, base_options(4));
  expect_optimal(el, report);
}

// The depth-0 main-track spans tile a rank's timeline: partGraph,
// makeGhost, per-level indComp/mergeParts, postProcess, collectResults are
// consecutive and every clock-advancing operation happens inside one of
// them, so their durations must sum to the rank's finish time.
TEST(MndMstTest, PhaseSpansCoverTotalTime) {
  const EdgeList el = graph::rmat(11, 16384, 9);
  auto opts = base_options(4);
  opts.collect_traces = true;
  const auto report = mst::run_mnd_mst(el, opts);
  ASSERT_EQ(report.run.rank_traces.size(), 4u);

  for (std::size_t r = 0; r < report.run.rank_traces.size(); ++r) {
    const auto& trace = report.run.rank_traces[r];
    double covered = 0.0;
    bool saw_indcomp = false;
    double prev_end = 0.0;
    for (const auto& s : trace.spans) {
      if (s.track != obs::Tracer::kMainTrack || s.depth != 0) continue;
      // Consecutive: each top-level span starts where the previous ended.
      EXPECT_GE(s.vt_begin, prev_end - 1e-12)
          << "rank " << r << " span " << s.name;
      prev_end = s.vt_end;
      covered += s.vt_seconds();
      if (s.name == "indComp") saw_indcomp = true;
    }
    EXPECT_TRUE(saw_indcomp) << "rank " << r;
    const double total = report.run.rank_finish_times[r];
    ASSERT_GT(total, 0.0);
    EXPECT_NEAR(covered, total, 0.01 * total)
        << "rank " << r << ": top-level spans must cover the timeline";
  }
}

}  // namespace
}  // namespace mnd
