// Headline-claim regression tests: the paper's qualitative results,
// asserted at reduced scale so the whole suite stays fast. If a model or
// algorithm change breaks one of the reproduced shapes, these fail before
// the bench harness would show it.
#include <gtest/gtest.h>

#include "bsp/msf.hpp"
#include "graph/datasets.hpp"
#include "mst/mnd_mst.hpp"
#include "simcluster/net_model.hpp"

namespace mnd {
namespace {

constexpr double kScale = 0.25;  // quarter-size stand-ins
constexpr double kDataScale = 4000.0;

mst::MndMstOptions amd_mnd(int nodes) {
  mst::MndMstOptions o;
  o.num_nodes = nodes;
  o.net = sim::NetModel::amd_cluster().for_data_scale(kDataScale);
  o.engine.cpu_model = device::CpuModel::amd_opteron_8core();
  return o;
}

bsp::BspOptions amd_bsp(int workers) {
  bsp::BspOptions o;
  o.num_workers = workers;
  o.net = sim::NetModel::amd_cluster_hadoop_rpc().for_data_scale(kDataScale);
  o.cpu_model = device::CpuModel::pregel_worker_8core();
  return o;
}

mst::MndMstOptions cray_mnd(int nodes, bool gpu) {
  mst::MndMstOptions o;
  o.num_nodes = nodes;
  o.net = sim::NetModel::cray_xc40().for_data_scale(kDataScale);
  o.engine.cpu_model = device::CpuModel::xeon_ivybridge_12core();
  o.engine.use_gpu = gpu;
  return o;
}

// Paper §5.2 / Table 3: MND-MST beats Pregel+ on web graphs...
TEST(PaperClaims, MndBeatsPregelOnWebGraphs) {
  const auto el = graph::make_dataset("it-2004", kScale);
  const auto bsp_r = bsp::run_bsp_msf(el, amd_bsp(16));
  const auto mnd_r = mst::run_mnd_mst(el, amd_mnd(16));
  EXPECT_LT(mnd_r.total_seconds, bsp_r.total_seconds * 0.6)
      << "expected >=40% improvement";
  // ...and cuts communication by a large factor.
  EXPECT_LT(mnd_r.comm_seconds, bsp_r.comm_seconds * 0.5);
}

// Paper §5.2: gsh-2015-tpd shows the smallest improvement of the six.
TEST(PaperClaims, GshIsTheWorstCaseForMnd) {
  auto ratio = [&](const std::string& name) {
    const auto el = graph::make_dataset(name, kScale);
    const auto b = bsp::run_bsp_msf(el, amd_bsp(16));
    const auto m = mst::run_mnd_mst(el, amd_mnd(16));
    return b.total_seconds / m.total_seconds;  // MND speedup
  };
  const double gsh = ratio("gsh-2015-tpd");
  EXPECT_LT(gsh, ratio("arabic-2005"));
  EXPECT_LT(gsh, ratio("uk-2007"));
}

// Paper Fig. 5: Pregel+ is communication-bound; MND-MST is compute-bound.
TEST(PaperClaims, CommunicationFractionInversion) {
  const auto el = graph::make_dataset("arabic-2005", kScale);
  const auto b = bsp::run_bsp_msf(el, amd_bsp(16));
  const auto m = mst::run_mnd_mst(el, amd_mnd(16));
  EXPECT_GT(b.communication_fraction(), 0.5);
  EXPECT_GT(m.computation_fraction(), 0.5);
}

// Paper Fig. 4: single-node MND-MST completes faster than Pregel+ on 16
// nodes (arabic-2005).
TEST(PaperClaims, SingleNodeMndBeatsSixteenNodePregel) {
  const auto el = graph::make_dataset("arabic-2005", kScale);
  const auto mnd1 = mst::run_mnd_mst(el, amd_mnd(1));
  const auto bsp16 = bsp::run_bsp_msf(el, amd_bsp(16));
  EXPECT_LT(mnd1.total_seconds, bsp16.total_seconds);
}

// Paper Fig. 6: large graphs scale to 16 nodes.
TEST(PaperClaims, LargeGraphsScale) {
  const auto el = graph::make_dataset("uk-2007", kScale);
  const auto t4 = mst::run_mnd_mst(el, cray_mnd(4, false)).total_seconds;
  const auto t16 = mst::run_mnd_mst(el, cray_mnd(16, false)).total_seconds;
  EXPECT_LT(t16, t4);  // still improving at 16 nodes
}

// Paper Fig. 7: indComp dominates the large web graphs.
TEST(PaperClaims, IndCompDominatesLargeGraphs) {
  const auto el = graph::make_dataset("uk-2007", kScale);
  const auto r = mst::run_mnd_mst(el, cray_mnd(8, false));
  EXPECT_GT(r.indcomp_seconds, 0.5 * r.total_seconds);
}

// Paper Fig. 8: the GPU helps on a single node and the benefit decays
// with node count.
TEST(PaperClaims, GpuBenefitDecaysWithNodes) {
  const auto el = graph::make_dataset("uk-2007", kScale);
  auto improvement = [&](int nodes) {
    const auto cpu = mst::run_mnd_mst(el, cray_mnd(nodes, false));
    const auto gpu = mst::run_mnd_mst(el, cray_mnd(nodes, true));
    return 1.0 - gpu.total_seconds / cpu.total_seconds;
  };
  const double at1 = improvement(1);
  const double at16 = improvement(16);
  EXPECT_GT(at1, 0.10);  // a real benefit on one node
  EXPECT_LT(at16, at1);  // decaying with scale
}

// Paper §3.4: the hierarchical merge respects a finite per-node memory
// capacity end to end.
TEST(PaperClaims, HierarchicalMergeRespectsMemoryBound) {
  const auto el = graph::make_dataset("arabic-2005", 0.1);
  auto opts = amd_mnd(16);
  opts.node_memory_bytes = 6u << 20;  // finite but sufficient
  const auto r = mst::run_mnd_mst(el, opts);
  for (const auto& peak : r.run.rank_peak_memory) {
    EXPECT_LE(peak, opts.node_memory_bytes);
  }
  EXPECT_EQ(r.forest.num_components,
            el.num_vertices() - r.forest.edges.size());
}

}  // namespace
}  // namespace mnd
