// Unit tests for src/util: check macros, logging, rng, flat hash,
// thread pool, stats, table printer.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "util/check.hpp"
#include "util/flat_hash.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace mnd {
namespace {

// ---- check macros -----------------------------------------------------------

TEST(CheckTest, PassingCheckDoesNothing) {
  EXPECT_NO_THROW(MND_CHECK(1 + 1 == 2));
}

TEST(CheckTest, FailingCheckThrowsCheckFailure) {
  EXPECT_THROW(MND_CHECK(false), CheckFailure);
}

TEST(CheckTest, MessageIsIncluded) {
  try {
    MND_CHECK_MSG(false, "value was " << 42);
    FAIL() << "should have thrown";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("value was 42"), std::string::npos);
  }
}

// ---- logging ----------------------------------------------------------------

TEST(LoggingTest, ParseLevels) {
  EXPECT_EQ(parse_log_level("trace"), LogLevel::Trace);
  EXPECT_EQ(parse_log_level("DEBUG"), LogLevel::Debug);
  EXPECT_EQ(parse_log_level("Info"), LogLevel::Info);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::Warn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::Error);
  EXPECT_EQ(parse_log_level("off"), LogLevel::Off);
  EXPECT_EQ(parse_log_level("bogus"), LogLevel::Info);
}

TEST(LoggingTest, SetAndGetLevel) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
  set_log_level(before);
}

// ---- rng --------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(RngTest, NextBelowCoversAllResidues) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextInInclusiveBounds) {
  Rng rng(11);
  bool hit_lo = false;
  bool hit_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto x = rng.next_in(3, 5);
    EXPECT_GE(x, 3u);
    EXPECT_LE(x, 5u);
    hit_lo |= (x == 3);
    hit_hi |= (x == 5);
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextBoolRoughlyMatchesP) {
  Rng rng(15);
  int heads = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) heads += rng.next_bool(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.25, 0.02);
}

TEST(RngTest, SplitProducesIndependentStreams) {
  Rng base(42);
  Rng s1 = base.split(1);
  Rng s2 = base.split(2);
  EXPECT_NE(s1.next(), s2.next());
  // Splitting again with the same stream id reproduces the stream.
  Rng s1_again = base.split(1);
  Rng s1_fresh = base.split(1);
  EXPECT_EQ(s1_again.next(), s1_fresh.next());
}

TEST(RngTest, Mix64Avalanche) {
  // Flipping one input bit should flip roughly half the output bits.
  int total_flips = 0;
  for (int bit = 0; bit < 64; ++bit) {
    const std::uint64_t a = mix64(0x1234567890ABCDEFULL);
    const std::uint64_t b = mix64(0x1234567890ABCDEFULL ^ (1ULL << bit));
    total_flips += __builtin_popcountll(a ^ b);
  }
  const double avg = total_flips / 64.0;
  EXPECT_GT(avg, 24.0);
  EXPECT_LT(avg, 40.0);
}

// ---- flat hash ---------------------------------------------------------------

TEST(FlatHashTest, InsertFind) {
  FlatHashMap<int, int> m;
  EXPECT_TRUE(m.insert_or_assign(1, 10));
  EXPECT_FALSE(m.insert_or_assign(1, 20));  // overwrite, not fresh
  EXPECT_EQ(*m.find(1), 20);
  EXPECT_EQ(m.find(2), nullptr);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatHashTest, OperatorBracketDefaultConstructs) {
  FlatHashMap<int, int> m;
  EXPECT_EQ(m[5], 0);
  m[5] = 7;
  EXPECT_EQ(m[5], 7);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatHashTest, EraseAndTombstoneReuse) {
  FlatHashMap<int, int> m;
  for (int i = 0; i < 100; ++i) m.insert_or_assign(i, i);
  for (int i = 0; i < 100; i += 2) EXPECT_TRUE(m.erase(i));
  EXPECT_EQ(m.size(), 50u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(m.contains(i), i % 2 == 1) << i;
  }
  // Reinsert over tombstones.
  for (int i = 0; i < 100; i += 2) m.insert_or_assign(i, -i);
  EXPECT_EQ(m.size(), 100u);
  EXPECT_EQ(*m.find(10), -10);
}

TEST(FlatHashTest, GrowthPreservesEntries) {
  FlatHashMap<std::uint64_t, std::uint64_t> m(4);
  const std::size_t n = 10000;
  for (std::uint64_t i = 0; i < n; ++i) m.insert_or_assign(i * 7919, i);
  EXPECT_EQ(m.size(), n);
  for (std::uint64_t i = 0; i < n; ++i) {
    ASSERT_NE(m.find(i * 7919), nullptr) << i;
    EXPECT_EQ(*m.find(i * 7919), i);
  }
}

TEST(FlatHashTest, ForEachVisitsAllOnce) {
  FlatHashMap<int, int> m;
  for (int i = 0; i < 500; ++i) m.insert_or_assign(i, 2 * i);
  std::set<int> keys;
  m.for_each([&](const int& k, const int& v) {
    EXPECT_EQ(v, 2 * k);
    EXPECT_TRUE(keys.insert(k).second);
  });
  EXPECT_EQ(keys.size(), 500u);
}

TEST(FlatHashTest, PairKeys) {
  FlatHashMap<std::pair<std::uint32_t, std::uint32_t>, int> m;
  m.insert_or_assign({1, 2}, 12);
  m.insert_or_assign({2, 1}, 21);
  EXPECT_EQ(*m.find({1, 2}), 12);
  EXPECT_EQ(*m.find({2, 1}), 21);
}

TEST(FlatHashTest, SetSemantics) {
  FlatHashSet<int> s;
  EXPECT_TRUE(s.insert(3));
  EXPECT_FALSE(s.insert(3));
  EXPECT_TRUE(s.contains(3));
  EXPECT_FALSE(s.contains(4));
  EXPECT_TRUE(s.erase(3));
  EXPECT_FALSE(s.erase(3));
  EXPECT_TRUE(s.empty());
}

TEST(FlatHashTest, ClearResets) {
  FlatHashMap<int, int> m;
  for (int i = 0; i < 64; ++i) m.insert_or_assign(i, i);
  m.clear();
  EXPECT_EQ(m.size(), 0u);
  EXPECT_FALSE(m.contains(5));
  m.insert_or_assign(5, 5);
  EXPECT_EQ(m.size(), 1u);
}

// ---- thread pool --------------------------------------------------------------

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(5, 5, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForChunksPartition) {
  ThreadPool pool(4);
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  pool.parallel_for_chunks(0, 103, [&](std::size_t lo, std::size_t hi) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.emplace_back(lo, hi);
  });
  std::sort(chunks.begin(), chunks.end());
  std::size_t expect = 0;
  for (const auto& [lo, hi] : chunks) {
    EXPECT_EQ(lo, expect);
    EXPECT_GT(hi, lo);
    expect = hi;
  }
  EXPECT_EQ(expect, 103u);
}

// ---- stats ---------------------------------------------------------------------

TEST(StatsTest, AccumulatorBasics) {
  StatAccumulator acc;
  for (double x : {1.0, 2.0, 3.0, 4.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 4u);
  EXPECT_DOUBLE_EQ(acc.sum(), 10.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.5);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 4.0);
  EXPECT_NEAR(acc.variance(), 1.25, 1e-12);
}

TEST(StatsTest, MergeMatchesCombined) {
  StatAccumulator a;
  StatAccumulator b;
  StatAccumulator all;
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const double x = rng.next_double() * 10;
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(StatsTest, EmptyAccumulator) {
  StatAccumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

TEST(StatsTest, Percentile) {
  std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 5.5);
}

TEST(StatsTest, PercentileSingleElement) {
  EXPECT_DOUBLE_EQ(percentile({42.0}, 73.0), 42.0);
}

TEST(StatsTest, GeometricMean) {
  EXPECT_DOUBLE_EQ(geometric_mean({}), 0.0);
  EXPECT_NEAR(geometric_mean({2.0, 8.0}), 4.0, 1e-12);
  EXPECT_NEAR(geometric_mean({1.0, 1.0, 1.0}), 1.0, 1e-12);
}

// ---- table ----------------------------------------------------------------------

TEST(TableTest, PrintsHeaderAndRows) {
  TextTable t({"Graph", "Time"});
  t.add_row({"road_usa", "21.56"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("Graph"), std::string::npos);
  EXPECT_NE(out.find("road_usa"), std::string::npos);
  EXPECT_NE(out.find("21.56"), std::string::npos);
}

TEST(TableTest, RejectsWrongWidth) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckFailure);
}

TEST(TableTest, NumFormatting) {
  EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
  EXPECT_EQ(TextTable::num(1.5, 0), "2");
}

// ---- timer -----------------------------------------------------------------------

TEST(TimerTest, MeasuresElapsed) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(t.seconds(), 0.005);
  t.reset();
  EXPECT_LT(t.seconds(), 0.5);
}

TEST(TimerTest, ScopedTimerAccumulates) {
  double sink = 0.0;
  {
    ScopedTimer st(&sink);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(sink, 0.0);
}

}  // namespace
}  // namespace mnd
