// Tests for the component graph: rename maps, ownership, serialization,
// memory accounting.
#include <gtest/gtest.h>

#include "mst/comp_graph.hpp"
#include "util/check.hpp"

namespace mnd::mst {
namespace {

Component make_comp(VertexId id, std::vector<CEdge> edges = {}) {
  Component c;
  c.id = id;
  c.edges = std::move(edges);
  return c;
}

// ---- RenameMap ---------------------------------------------------------------

TEST(RenameMapTest, ResolveFollowsChain) {
  RenameMap m;
  m.add(1, 2);
  m.add(2, 5);
  m.add(5, 9);
  EXPECT_EQ(m.resolve(1), 9u);
  EXPECT_EQ(m.resolve(2), 9u);
  EXPECT_EQ(m.resolve(9), 9u);
  EXPECT_EQ(m.resolve(42), 42u);
}

TEST(RenameMapTest, SelfRenameIgnored) {
  RenameMap m;
  m.add(3, 3);
  EXPECT_EQ(m.size(), 0u);
}

TEST(RenameMapTest, ExistingEntryKept) {
  RenameMap m;
  m.add(1, 2);
  m.add(2, 7);
  m.add(1, 7);  // snapshot-compressed duplicate; chain already resolves
  EXPECT_EQ(m.resolve(1), 7u);
  EXPECT_EQ(m.size(), 2u);
}

TEST(RenameMapTest, PathCompressionKeepsAnswers) {
  RenameMap m;
  for (VertexId i = 0; i < 100; ++i) m.add(i, i + 1);
  EXPECT_EQ(m.resolve(0), 100u);
  EXPECT_EQ(m.resolve(50), 100u);  // after compression
  EXPECT_EQ(m.resolve(0), 100u);
}

TEST(RenameMapTest, MergeFrom) {
  RenameMap a;
  a.add(1, 2);
  RenameMap b;
  b.add(2, 3);
  a.merge_from(b);
  EXPECT_EQ(a.resolve(1), 3u);
}

// ---- CompGraph -----------------------------------------------------------------

TEST(CompGraphTest, AdoptFindRelease) {
  CompGraph cg;
  cg.adopt(make_comp(5, {CEdge{7, 10, 0}}));
  EXPECT_TRUE(cg.owns(5));
  EXPECT_FALSE(cg.owns(7));
  EXPECT_EQ(cg.num_components(), 1u);
  EXPECT_EQ(cg.num_edges(), 1u);
  const Component out = cg.release(5);
  EXPECT_EQ(out.id, 5u);
  EXPECT_FALSE(cg.owns(5));
  EXPECT_EQ(cg.num_edges(), 0u);
}

TEST(CompGraphTest, DoubleAdoptThrows) {
  CompGraph cg;
  cg.adopt(make_comp(1));
  EXPECT_THROW(cg.adopt(make_comp(1)), CheckFailure);
}

TEST(CompGraphTest, ReleaseUnownedThrows) {
  CompGraph cg;
  EXPECT_THROW(cg.release(3), CheckFailure);
}

TEST(CompGraphTest, ComponentIdsSorted) {
  CompGraph cg;
  for (VertexId id : {9u, 1u, 5u, 3u}) cg.adopt(make_comp(id));
  EXPECT_EQ(cg.component_ids(), (std::vector<VertexId>{1, 3, 5, 9}));
  cg.erase(5);
  EXPECT_EQ(cg.component_ids(), (std::vector<VertexId>{1, 3, 9}));
}

TEST(CompGraphTest, SlotReuseAfterRelease) {
  CompGraph cg;
  for (VertexId id = 0; id < 100; ++id) cg.adopt(make_comp(id));
  for (VertexId id = 0; id < 100; id += 2) cg.erase(id);
  for (VertexId id = 100; id < 150; ++id) cg.adopt(make_comp(id));
  EXPECT_EQ(cg.num_components(), 100u);
  EXPECT_TRUE(cg.owns(149));
  EXPECT_FALSE(cg.owns(2));
}

TEST(CompGraphTest, MemoryAccountingTracksAdoptRelease) {
  sim::MemTracker mem(1 << 20);
  CompGraph cg;
  cg.attach_memory(&mem);
  EXPECT_EQ(mem.used(), 0u);
  cg.adopt(make_comp(1, {CEdge{2, 5, 0}, CEdge{3, 6, 1}}));
  const std::size_t after_adopt = mem.used();
  EXPECT_GT(after_adopt, 0u);
  cg.erase(1);
  EXPECT_EQ(mem.used(), 0u);
  EXPECT_EQ(mem.peak(), after_adopt);
}

TEST(CompGraphTest, MemoryCapacityEnforced) {
  sim::MemTracker mem(200);
  CompGraph cg;
  cg.attach_memory(&mem);
  Component big = make_comp(1);
  big.edges.resize(1000);
  EXPECT_THROW(cg.adopt(std::move(big)), CheckFailure);
}

TEST(CompGraphTest, RefreshAccountingAfterInPlaceEdit) {
  sim::MemTracker mem;
  CompGraph cg;
  cg.attach_memory(&mem);
  cg.adopt(make_comp(1, {CEdge{2, 5, 0}, CEdge{3, 6, 1}}));
  cg.find(1)->edges.clear();
  cg.refresh_accounting();
  EXPECT_EQ(cg.num_edges(), 0u);
}

TEST(CompGraphTest, MstEdgeCommitAccumulates) {
  CompGraph cg;
  cg.commit_mst_edge(10);
  cg.commit_mst_edge(20);
  EXPECT_EQ(cg.mst_edges(), (std::vector<graph::EdgeId>{10, 20}));
}

// ---- serialization ----------------------------------------------------------------

TEST(CompSerializationTest, RoundTrip) {
  Component a = make_comp(3, {CEdge{9, 4, 7}, CEdge{11, 2, 8}});
  a.vertex_count = 4;
  a.absorbed = {1, 2, 6};
  Component b = make_comp(12);
  sim::Serializer s;
  serialize_components({a, b}, &s);
  const auto bytes = s.take();
  sim::Deserializer d(bytes);
  const ComponentBundle bundle = deserialize_components(&d);
  ASSERT_EQ(bundle.comps.size(), 2u);
  EXPECT_EQ(bundle.comps[0].id, 3u);
  EXPECT_EQ(bundle.comps[0].vertex_count, 4u);
  EXPECT_EQ(bundle.comps[0].absorbed, (std::vector<VertexId>{1, 2, 6}));
  ASSERT_EQ(bundle.comps[0].edges.size(), 2u);
  EXPECT_EQ(bundle.comps[0].edges[1].to, 11u);
  EXPECT_EQ(bundle.comps[0].edges[1].orig, 8u);
  EXPECT_EQ(bundle.comps[1].id, 12u);
  EXPECT_TRUE(d.exhausted());
}

TEST(CompSerializationTest, CompactRoundTripRestoresStrictOrder) {
  Component a = make_comp(3, {CEdge{9, 4, 7}, CEdge{11, 2, 8}});
  a.vertex_count = 4;
  a.absorbed = {6, 1, 2};  // stored order must survive, not get sorted
  Component b = make_comp(12);
  sim::Serializer s;
  serialize_components({a, b}, &s, sim::WireFormat::kCompact);
  const auto bytes = s.take();
  sim::Deserializer d(bytes);
  const ComponentBundle bundle = deserialize_components(&d);
  ASSERT_EQ(bundle.comps.size(), 2u);
  EXPECT_EQ(bundle.comps[0].id, 3u);
  EXPECT_EQ(bundle.comps[0].vertex_count, 4u);
  EXPECT_EQ(bundle.comps[0].absorbed, (std::vector<VertexId>{6, 1, 2}));
  ASSERT_EQ(bundle.comps[0].edges.size(), 2u);
  // Decoder re-sorts into the strict (w, orig) order: {11,2,8} first.
  EXPECT_EQ(bundle.comps[0].edges[0].to, 11u);
  EXPECT_EQ(bundle.comps[0].edges[0].orig, 8u);
  EXPECT_EQ(bundle.comps[0].edges[1].to, 9u);
  EXPECT_EQ(bundle.comps[1].id, 12u);
  EXPECT_TRUE(d.exhausted());
}

TEST(CompSerializationTest, CrossFramingRejected) {
  Component a = make_comp(3, {CEdge{9, 4, 7}});
  sim::Serializer s;
  serialize_components({a}, &s, sim::WireFormat::kCompact);
  auto bytes = s.take();
  bytes[0] = 0x55;  // neither framing magic
  sim::Deserializer d(bytes);
  EXPECT_THROW(deserialize_components(&d), mnd::CheckFailure);
}

TEST(CompSerializationTest, WireBytesMatchesSerializedSize) {
  Component a = make_comp(3, {CEdge{9, 4, 7}});
  a.absorbed = {1, 2};
  for (const auto fmt : {sim::WireFormat::kRaw, sim::WireFormat::kCompact}) {
    sim::Serializer s;
    serialize_components({a}, &s, fmt);
    // Total = framing header + per-component wire bytes, both exact.
    EXPECT_EQ(s.size(), wire_header_bytes(1, fmt) + wire_bytes(a, fmt));
  }
}

TEST(CompSerializationTest, EmptyBundle) {
  sim::Serializer s;
  serialize_components({}, &s);
  const auto bytes = s.take();
  sim::Deserializer d(bytes);
  EXPECT_TRUE(deserialize_components(&d).comps.empty());
}

}  // namespace
}  // namespace mnd::mst
