// Scenario: writing a different graph application against the HyPar API.
//
// The paper positions HyPar as a general framework ("We plan to extend
// this work to implement more graph applications"). This example runs
// *connected components* through the same partGraph / indComp /
// mergeParts / postProcess pipeline by defining a custom Kernel: Boruvka
// contraction over unit weights — every contraction edge is a connectivity
// witness, so the resulting forest labels the components.
//
//   ./hypar_components
#include <cstdio>
#include <mutex>

#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/traversal.hpp"
#include "graph/union_find.hpp"
#include "hypar/engine.hpp"
#include "simcluster/cluster.hpp"

namespace {

using namespace mnd;

/// Connectivity kernel: Boruvka contraction where weights are ignored —
/// the (weight, id) total order degenerates to edge-id order, which is
/// all the exception condition and merging machinery need.
class ConnectivityKernel final : public hypar::Kernel {
 public:
  std::string name() const override { return "connected-components"; }
  mst::BoruvkaStats indComp(mst::CompGraph& cg,
                            const mst::Participates& participates,
                            const mst::BoruvkaOptions& opts) override {
    return mst::local_boruvka(cg, participates, opts);
  }
};

}  // namespace

int main() {
  // A graph with several components: disjoint communities plus isolated
  // vertices.
  graph::EdgeList el(9000);
  {
    auto chunk = [&](graph::VertexId base, graph::VertexId n,
                     std::uint64_t seed) {
      const auto part = graph::erdos_renyi(n, n * 3, seed);
      for (const auto& e : part.edges()) {
        el.add_edge(base + e.u, base + e.v, 1);  // unit weights
      }
    };
    chunk(0, 4000, 1);
    chunk(4000, 3000, 2);
    chunk(7000, 1500, 3);
    // vertices 8500..8999 stay isolated
  }
  const graph::Csr csr = graph::Csr::from_edge_list(el);

  std::vector<graph::VertexId> reference_labels;
  const std::size_t expected =
      graph::connected_components(csr, &reference_labels);
  std::printf("graph: %u vertices, %zu edges, %zu connected components\n",
              csr.num_vertices(), csr.num_edges(), expected);

  // Run the HyPar pipeline on 8 simulated nodes with the custom kernel.
  sim::ClusterConfig config;
  config.num_ranks = 8;
  std::vector<graph::EdgeId> witness_edges;
  std::mutex mu;
  sim::run_cluster(config, [&](sim::Communicator& comm) {
    ConnectivityKernel kernel;
    hypar::EngineOptions opts;  // defaults: EXCPT_BORDER_VERTEX, group 4
    auto result = hypar::run_engine(comm, csr, kernel, opts);
    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lock(mu);
      witness_edges = std::move(result.forest_edges);
    }
  });

  // The contraction edges form a spanning forest: union them to label
  // components.
  graph::UnionFind uf(el.num_vertices());
  for (graph::EdgeId id : witness_edges) {
    const auto& e = el.edge(id);
    uf.unite(e.u, e.v);
  }
  const std::size_t found = uf.num_components();
  std::printf("HyPar pipeline found %zu components using %zu witness "
              "edges\n",
              found, witness_edges.size());
  if (found != expected) {
    std::printf("MISMATCH: expected %zu\n", expected);
    return 1;
  }
  // Every pair of vertices must agree with the reference labeling.
  for (graph::VertexId v = 1; v < el.num_vertices(); ++v) {
    const bool same_ref = reference_labels[v] == reference_labels[v - 1];
    const bool same_got = uf.connected(v, v - 1);
    if (same_ref != same_got) {
      std::printf("label mismatch at vertex %u\n", v);
      return 1;
    }
  }
  std::printf("labels agree with the single-machine reference.\n");
  return 0;
}
