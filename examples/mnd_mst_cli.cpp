// Command-line driver: run MND-MST on a graph file.
//
//   mnd_mst_cli <graph-file|rmat:SCALE,EDGES,SEED> [options]
//   mnd_mst_cli graph <info|convert> ...          graph-file tooling
//
// The `graph` subcommand works with graph files without running MST
// (docs/GRAPH_FORMAT.md describes the .mndg binary format byte by byte):
//
//   graph info <file.mndg>            print header + chunk-index summary
//   graph convert <in> <out>          convert between formats; the output
//                                     format follows <out>'s extension
//                                     (.mndg binary chunked, .mtx, .gr
//                                     dimacs, else text). Reads any input
//                                     load() understands, including
//                                     rmat: specs — so this is also how a
//                                     graph is *saved* to .mndg — and
//                                     .mndg itself, which *loads* one back
//                                     out to an editable text form.
//     --format F                      input format override (as below)
//     --chunk-edges N                 edges per .mndg chunk (default 2^20)
//     --random-weights SEED           re-draw weights before writing
//
// Run options:
//
//   --format text|dimacs|mtx|binary|mndg  input format (default: by
//                                     extension; .mndg streams, see below)
//   --nodes N                         simulated nodes (default 4)
//   --group G                         hierarchical-merge group size (4)
//   --threads N                       shared-memory threads per rank for
//                                     the hot paths (default: MND_THREADS,
//                                     else hardware concurrency); any value
//                                     yields the identical forest and
//                                     virtual-time results
//   --gpu                             enable the CPU+GPU device split
//   --random-weights SEED             re-draw weights in [1, 1e6] (the
//                                     paper's protocol for its inputs)
//   --out FILE                        write the forest as "u v w" lines
//   --trace-out FILE                  record per-rank spans and write a
//                                     Chrome trace_event JSON (load in
//                                     Perfetto / chrome://tracing), with
//                                     sender->receiver flow arrows
//   --metrics-out FILE                write per-rank + merged metrics JSON
//   --profile-out FILE                write the critical-path profile JSON:
//                                     the run's makespan attributed to
//                                     compute / serialization / wire /
//                                     stall / straggler-wait per merge
//                                     level, plus imbalance stats and
//                                     latency percentiles (render or diff
//                                     with tools/perf_report.py)
//   --validate                        run the phase-boundary invariant
//                                     validators during the run and check
//                                     the result against exact Kruskal
//                                     (MND_VALIDATE=1 also enables them)
//   --wire raw|compact                wire encoding for every transport
//                                     payload (default: MND_WIRE, else
//                                     compact). compact delta/varint-packs
//                                     payloads (DESIGN.md §5d); the forest
//                                     is byte-identical in both modes
//   --filter on|off|RATE              per-rank KKT-style F-lightness filter
//                                     upstream of every exchange (default:
//                                     MND_FILTER, else off). RATE in (0,1]
//                                     enables it with that sample rate
//                                     (plain "on" samples at 0.25); the
//                                     forest is byte-identical either way
//                                     (DESIGN.md §5g)
//   --schedule fixed|adaptive         merge schedule (default: MND_SCHEDULE,
//                                     else fixed). fixed uses --group and
//                                     the paper's convergence constants at
//                                     every level; adaptive re-decides the
//                                     group fan-in and ring-round cap per
//                                     level from collective virtual-time
//                                     metrics, deterministically
//   --backend sim|real                compute backend for the kernel
//                                     invocations (default: MND_BACKEND,
//                                     else sim). sim charges priced virtual
//                                     time only; real runs the identical
//                                     kernels on the thread pool and also
//                                     reports measured wall-clock. The
//                                     forest and all virtual times are
//                                     identical across backends
//   --faults SPEC                     seeded fault-injection plan for the
//                                     simulated cluster (MND_FAULTS also
//                                     sets it). SPEC is comma-separated:
//                                     seed=N, drop=P, delay=P:SECONDS,
//                                     dup=P, stall=RANK@ATxDURATION,
//                                     crash=RANK@CUT, retry=SECONDS,
//                                     detect=SECONDS. The forest is
//                                     unchanged for any plan that leaves
//                                     one surviving rank.
//   --stream                          stream a .mndg input chunk by chunk
//                                     into per-rank CSR shards instead of
//                                     materializing the global edge list
//                                     (docs/INGESTION.md). The forest
//                                     edge-id set is identical to the
//                                     materialized run. Requires a .mndg
//                                     input; --out needs the edge list and
//                                     is rejected
//   --mem-budget BYTES                with --stream: peak ingest bytes any
//                                     one rank may reach; exceeding it
//                                     fails the load (0 = unlimited)
//   --partition degree|hash           vertex-to-rank assignment (default:
//                                     MND_PARTITION, else degree). hash
//                                     scatters hub vertices through the
//                                     reversible bucket permutation before
//                                     the contiguous cut; the forest
//                                     edge-id set is identical either way
//
// Options accept both "--flag VALUE" and "--flag=VALUE". The pseudo-path
// "rmat:SCALE,EDGES,SEED" generates a 2^SCALE-vertex R-MAT graph instead of
// reading a file.
//
// Example:
//   ./mnd_mst_cli rmat:14,131072,1 --nodes 8 --gpu --trace-out trace.json
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/mndg.hpp"
#include "graph/reference_mst.hpp"
#include "mst/mnd_mst.hpp"
#include "obs/export.hpp"

namespace {

using namespace mnd;

/// Parses "rmat:SCALE,EDGES,SEED" (EDGES and SEED optional: default
/// 8 edges/vertex, seed 1).
graph::EdgeList generate_rmat(const std::string& spec) {
  const std::string body = spec.substr(5);
  unsigned scale = 0;
  unsigned long long edges = 0, seed = 1;
  const int got = std::sscanf(body.c_str(), "%u,%llu,%llu", &scale, &edges,
                              &seed);
  MND_CHECK_MSG(got >= 1 && scale >= 1 && scale <= 26,
                "bad rmat spec \"" << spec
                                   << "\" (want rmat:SCALE[,EDGES[,SEED]])");
  if (got < 2) edges = 8ull << scale;
  graph::EdgeList el =
      graph::rmat(static_cast<graph::VertexId>(scale), edges, seed);
  el.randomize_weights(seed, 1, 1'000'000);
  return el;
}

graph::EdgeList load(const std::string& path, std::string format) {
  if (path.rfind("rmat:", 0) == 0) return generate_rmat(path);
  if (format.empty()) {
    const auto dot = path.rfind('.');
    const std::string ext = dot == std::string::npos ? "" : path.substr(dot);
    if (ext == ".mtx") {
      format = "mtx";
    } else if (ext == ".gr" || ext == ".dimacs") {
      format = "dimacs";
    } else if (ext == ".bin" || ext == ".mnd") {
      format = "binary";
    } else if (ext == ".mndg") {
      format = "mndg";
    } else {
      format = "text";
    }
  }
  if (format == "mtx") return graph::read_matrix_market_file(path);
  if (format == "binary") return graph::read_binary_file(path);
  if (format == "mndg") return graph::read_mndg_file(path);
  if (format == "dimacs") return graph::read_dimacs_file(path);
  return graph::read_edge_list_text_file(path);
}

/// `mnd_mst_cli graph ...`: graph-file tooling that never runs MST.
int graph_tool_usage() {
  std::fprintf(stderr,
               "usage: mnd_mst_cli graph info <file.mndg>\n"
               "       mnd_mst_cli graph convert <in> <out> "
               "[--format F] [--chunk-edges N]\n"
               "                                 [--random-weights SEED]\n"
               "output format follows <out>'s extension: .mndg chunked "
               "binary, .mtx, .gr\n"
               "dimacs, else whitespace text (docs/GRAPH_FORMAT.md)\n");
  return 2;
}

int graph_tool(const std::vector<std::string>& args) {
  if (args.empty()) return graph_tool_usage();
  const std::string& cmd = args[0];

  if (cmd == "info") {
    if (args.size() != 2) return graph_tool_usage();
    auto in = graph::open_graph_input(args[1]);
    const graph::MndgHeader h = graph::read_mndg_header(*in);
    std::uint64_t payload = 0;
    std::uint64_t max_chunk = 0;
    for (const graph::MndgChunkInfo& c : h.chunks) {
      payload += c.byte_size;
      max_chunk = std::max(max_chunk, c.byte_size);
    }
    std::printf("%s: mndg v%u, %u vertices, %llu edges\n", args[1].c_str(),
                h.version, h.num_vertices,
                static_cast<unsigned long long>(h.num_edges));
    std::printf("  %zu chunk(s), %llu payload bytes, largest chunk %llu "
                "bytes\n",
                h.chunks.size(), static_cast<unsigned long long>(payload),
                static_cast<unsigned long long>(max_chunk));
    if (h.num_edges > 0) {
      std::printf("  %.2f bytes/edge encoded (vs %zu raw)\n",
                  static_cast<double>(payload) /
                      static_cast<double>(h.num_edges),
                  sizeof(graph::WeightedEdge));
    }
    return 0;
  }

  if (cmd == "convert") {
    if (args.size() < 3) return graph_tool_usage();
    const std::string& in_path = args[1];
    const std::string& out_path = args[2];
    std::string format;
    std::size_t chunk_edges = 0;  // 0: write_mndg_file default
    bool randomize = false;
    std::uint64_t weight_seed = 0;
    for (std::size_t i = 3; i < args.size(); ++i) {
      const std::string& arg = args[i];
      auto next = [&]() -> const char* {
        if (i + 1 >= args.size()) {
          std::fprintf(stderr, "missing value for %s\n", arg.c_str());
          std::exit(graph_tool_usage());
        }
        return args[++i].c_str();
      };
      if (arg == "--format") {
        format = next();
      } else if (arg == "--chunk-edges") {
        chunk_edges = static_cast<std::size_t>(std::atoll(next()));
      } else if (arg == "--random-weights") {
        randomize = true;
        weight_seed = static_cast<std::uint64_t>(std::atoll(next()));
      } else {
        std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
        return graph_tool_usage();
      }
    }
    graph::EdgeList el = load(in_path, format);
    if (randomize) el.randomize_weights(weight_seed, 1, 1'000'000);
    const auto dot = out_path.rfind('.');
    const std::string ext =
        dot == std::string::npos ? "" : out_path.substr(dot);
    if (ext == ".mndg") {
      graph::write_mndg_file(el, out_path, chunk_edges);
    } else {
      auto out = graph::open_graph_output(out_path);
      if (ext == ".mtx") {
        graph::write_matrix_market(el, *out);
      } else if (ext == ".gr" || ext == ".dimacs") {
        graph::write_dimacs(el, *out);
      } else {
        graph::write_edge_list_text(el, *out);
      }
    }
    std::printf("wrote %s: %u vertices, %zu edges\n", out_path.c_str(),
                el.num_vertices(), el.num_edges());
    return 0;
  }

  std::fprintf(stderr, "unknown graph subcommand: %s\n", cmd.c_str());
  return graph_tool_usage();
}

int usage() {
  std::fprintf(stderr,
               "usage: mnd_mst_cli <graph-file|rmat:SCALE,EDGES,SEED>\n"
               "                   [--format text|dimacs|mtx|binary|mndg] "
               "[--nodes N]\n"
               "                   [--group G] [--threads N] [--gpu] "
               "[--random-weights SEED]\n"
               "                   [--out FILE]\n"
               "                   [--trace-out FILE] [--metrics-out FILE] "
               "[--profile-out FILE]\n"
               "                   [--validate]\n"
               "                   [--wire raw|compact]\n"
               "                   [--filter on|off|RATE] "
               "[--schedule fixed|adaptive]\n"
               "                   [--backend sim|real]\n"
               "                   [--faults SPEC]   (e.g. "
               "--faults seed=7,drop=0.01,crash=2@1)\n"
               "                   [--stream] [--mem-budget BYTES] "
               "[--partition degree|hash]\n"
               "       mnd_mst_cli graph <info|convert> ...   "
               "(graph-file tooling;\n"
               "                   convert takes [--format F] "
               "[--chunk-edges N] [--random-weights SEED])\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string path = argv[1];
  if (path == "graph") {
    try {
      return graph_tool(std::vector<std::string>(argv + 2, argv + argc));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "graph tool failed: %s\n", e.what());
      return 1;
    }
  }
  std::string format;
  std::string out_path;
  std::string trace_path;
  std::string metrics_path;
  std::string profile_path;
  mst::MndMstOptions options;
  bool validate = false;
  bool randomize = false;
  bool stream = false;
  std::uint64_t weight_seed = 0;

  // Split "--flag=VALUE" into "--flag" "VALUE" so both styles work.
  std::vector<std::string> args;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    if (arg.rfind("--", 0) == 0 && eq != std::string::npos) {
      args.push_back(arg.substr(0, eq));
      args.push_back(arg.substr(eq + 1));
    } else {
      args.push_back(arg);
    }
  }

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(usage());
      }
      return args[++i].c_str();
    };
    if (arg == "--format") {
      format = next();
    } else if (arg == "--nodes") {
      options.num_nodes = std::atoi(next());
    } else if (arg == "--group") {
      options.engine.group_size = std::atoi(next());
    } else if (arg == "--threads") {
      options.threads = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--gpu") {
      options.engine.use_gpu = true;
    } else if (arg == "--random-weights") {
      randomize = true;
      weight_seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--trace-out") {
      trace_path = next();
      options.collect_traces = true;
    } else if (arg == "--metrics-out") {
      metrics_path = next();
      options.collect_metrics = true;
    } else if (arg == "--profile-out") {
      profile_path = next();
      options.collect_traces = true;  // profiling rides the causality log
    } else if (arg == "--validate") {
      validate = true;
    } else if (arg == "--wire") {
      const std::string mode = next();
      if (mode == "raw") {
        options.engine.wire = sim::WireFormat::kRaw;
      } else if (mode == "compact") {
        options.engine.wire = sim::WireFormat::kCompact;
      } else {
        std::fprintf(stderr, "--wire must be raw or compact, got %s\n",
                     mode.c_str());
        return usage();
      }
    } else if (arg == "--filter") {
      const std::string mode = next();
      if (mode == "off") {
        options.engine.filter.mode = mst::FilterMode::kOff;
      } else if (mode == "on") {
        options.engine.filter.mode = mst::FilterMode::kOn;
      } else {
        char* end = nullptr;
        const double rate = std::strtod(mode.c_str(), &end);
        if (end == mode.c_str() || *end != '\0' || rate <= 0.0 ||
            rate > 1.0) {
          std::fprintf(stderr,
                       "--filter must be on, off, or a rate in (0,1], "
                       "got %s\n",
                       mode.c_str());
          return usage();
        }
        options.engine.filter.mode = mst::FilterMode::kOn;
        options.engine.filter.sample_rate = rate;
      }
    } else if (arg == "--schedule") {
      const std::string mode = next();
      if (mode == "fixed") {
        options.engine.schedule = hypar::ScheduleMode::kFixed;
      } else if (mode == "adaptive") {
        options.engine.schedule = hypar::ScheduleMode::kAdaptive;
      } else {
        std::fprintf(stderr, "--schedule must be fixed or adaptive, got %s\n",
                     mode.c_str());
        return usage();
      }
    } else if (arg == "--backend") {
      const std::string mode = next();
      if (mode == "sim") {
        options.engine.backend = device::BackendKind::kSim;
      } else if (mode == "real") {
        options.engine.backend = device::BackendKind::kReal;
      } else {
        std::fprintf(stderr, "--backend must be sim or real, got %s\n",
                     mode.c_str());
        return usage();
      }
    } else if (arg == "--faults") {
      options.faults = sim::FaultPlan::parse(next());
    } else if (arg == "--stream") {
      stream = true;
    } else if (arg == "--mem-budget") {
      options.mem_budget = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--partition") {
      const std::string mode = next();
      if (mode == "degree") {
        options.partition = hypar::PartitionScheme::kDegree;
      } else if (mode == "hash") {
        options.partition = hypar::PartitionScheme::kHash;
      } else {
        std::fprintf(stderr, "--partition must be degree or hash, got %s\n",
                     mode.c_str());
        return usage();
      }
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return usage();
    }
  }

  options.validate = validate;
  if (!options.faults.active()) options.faults = sim::FaultPlan::from_env();

  if (stream && (randomize || !out_path.empty())) {
    std::fprintf(stderr, "--stream never materializes the edge list; "
                         "--random-weights and --out need it (convert the "
                         "graph instead: mnd_mst_cli graph convert)\n");
    return usage();
  }

  graph::EdgeList el;
  mst::MndMstReport report;
  if (stream) {
    try {
      auto in = graph::open_graph_input(path);
      report = mst::run_mnd_mst_streamed(*in, options);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "streamed run on %s failed: %s\n", path.c_str(),
                   e.what());
      return 1;
    }
    std::printf("streamed %s (%s partition): %llu payload bytes in %llu "
                "chunk(s)\n",
                path.c_str(),
                hypar::partition_scheme_name(report.ingest.scheme),
                static_cast<unsigned long long>(report.ingest.file_bytes),
                static_cast<unsigned long long>(report.ingest.file_chunks));
    std::printf("ingest: peak %zu bytes/rank (shared %zu) | balance "
                "arcs %.3f vertices %.3f | %.6fs virtual read\n",
                report.ingest.peak_rank_bytes,
                report.ingest.shared_peak_bytes,
                report.ingest.balance.arc_imbalance,
                report.ingest.balance.vertex_imbalance,
                report.ingest.read_seconds);
  } else {
    try {
      el = load(path, format);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "failed to load %s: %s\n", path.c_str(),
                   e.what());
      return 1;
    }
    if (randomize) el.randomize_weights(weight_seed, 1, 1'000'000);
    std::printf("loaded %s: %u vertices, %zu edges\n", path.c_str(),
                el.num_vertices(), el.num_edges());
    report = mst::run_mnd_mst(el, options);
  }
  std::printf("forest: %zu edges, weight %llu, %zu component(s)\n",
              report.forest.edges.size(),
              static_cast<unsigned long long>(report.forest.total_weight),
              report.forest.num_components);
  std::printf("virtual time: %.6fs total | comm %.6fs | indComp %.6fs | "
              "merge %.6fs | postProcess %.6fs\n",
              report.total_seconds, report.comm_seconds,
              report.indcomp_seconds, report.merge_seconds,
              report.postprocess_seconds);
  if (device::resolve_backend(options.engine.backend) ==
      device::BackendKind::kReal) {
    std::uint64_t invocations = 0;
    double priced = 0.0, measured = 0.0;
    for (const hypar::RankTrace& t : report.traces) {
      invocations += t.backend_invocations;
      priced += t.backend_priced_seconds;
      measured += t.backend_measured_seconds;
    }
    std::printf("real backend: %llu kernel invocation(s) | measured "
                "%.6fs wall-clock | priced %.6fs virtual\n",
                static_cast<unsigned long long>(invocations), measured,
                priced);
  }

  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    if (!out.good()) {
      std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
      return 1;
    }
    obs::write_chrome_trace(out, report.run.rank_traces,
                            &report.run.rank_causality);
    std::printf("Chrome trace written to %s (open in Perfetto or "
                "chrome://tracing)\n",
                trace_path.c_str());
  }
  if (!profile_path.empty()) {
    std::ofstream out(profile_path);
    if (!out.good()) {
      std::fprintf(stderr, "cannot write %s\n", profile_path.c_str());
      return 1;
    }
    const obs::CriticalPath path =
        obs::extract_critical_path(report.run.rank_causality);
    obs::validate_critical_path(path, report.run.rank_causality);
    obs::write_profile_json(out, report.run.rank_causality, path,
                            &report.run.rank_metrics);
    std::printf("critical-path profile written to %s (render with "
                "tools/perf_report.py)\n",
                profile_path.c_str());
  }
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    if (!out.good()) {
      std::fprintf(stderr, "cannot write %s\n", metrics_path.c_str());
      return 1;
    }
    obs::write_metrics_json(out, report.run.rank_metrics);
    std::printf("metrics written to %s\n", metrics_path.c_str());
  }

  if (validate || !report.validation.ok()) {
    if (!report.validation.ok()) {
      for (const auto& f : report.validation.failures()) {
        std::printf("VALIDATION FAILED [%s]: %s\n", f.check.c_str(),
                    f.detail.c_str());
      }
      return 1;
    }
    if (stream) {
      // The exact-Kruskal cross-check needs the materialized edge list.
      std::printf("validated: %zu invariant check(s) passed (streamed run: "
                  "exact-Kruskal cross-check skipped)\n",
                  report.validation.checks_run());
    } else {
      const auto v =
          graph::validate_spanning_forest(el, report.forest.edges);
      if (!v.ok) {
        std::printf("VALIDATION FAILED: %s\n", v.error.c_str());
        return 1;
      }
      std::printf("validated: %zu invariant check(s) passed, forest "
                  "matches exact Kruskal\n",
                  report.validation.checks_run());
    }
  }
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out.good()) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    for (graph::EdgeId id : report.forest.edges) {
      const auto& e = el.edge(id);
      out << e.u << ' ' << e.v << ' ' << e.w << '\n';
    }
    std::printf("forest written to %s\n", out_path.c_str());
  }
  return 0;
}
