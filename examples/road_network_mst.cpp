// Scenario: minimum-cost road/utility network design.
//
// Given candidate road segments with construction costs, the MST is the
// cheapest network connecting every intersection — the classic
// network-design application the paper's introduction motivates. This
// example uses a road-grid graph (high diameter, low degree, like
// road_usa), runs MND-MST at several cluster sizes, and shows the
// small-graph scaling behaviour the paper discusses (Figure 6/7:
// communication eventually dominates tiny graphs).
//
//   ./road_network_mst [rows] [cols]
#include <cstdio>
#include <cstdlib>

#include "graph/generators.hpp"
#include "graph/reference_mst.hpp"
#include "mst/mnd_mst.hpp"

int main(int argc, char** argv) {
  using namespace mnd;
  const auto rows =
      static_cast<graph::VertexId>(argc > 1 ? std::atoi(argv[1]) : 200);
  const auto cols =
      static_cast<graph::VertexId>(argc > 2 ? std::atoi(argv[2]) : 60);

  const graph::EdgeList roads =
      graph::road_grid(rows, cols, /*diag_p=*/0.05, /*drop_p=*/0.15,
                       /*seed=*/99);
  std::printf("road candidates: %u intersections, %zu segments\n",
              roads.num_vertices(), roads.num_edges());

  const auto exact = graph::kruskal_mst(roads);
  std::printf("minimum network cost (exact): %llu across %zu segments\n\n",
              static_cast<unsigned long long>(exact.total_weight),
              exact.edges.size());

  std::printf("%-6s %-12s %-12s %-12s\n", "nodes", "total(s)", "comm(s)",
              "postProc(s)");
  for (int nodes : {1, 2, 4, 8, 16}) {
    mst::MndMstOptions options;
    options.num_nodes = nodes;
    const auto report = mst::run_mnd_mst(roads, options);
    if (report.forest.total_weight != exact.total_weight) {
      std::printf("MISMATCH at %d nodes!\n", nodes);
      return 1;
    }
    std::printf("%-6d %-12.6f %-12.6f %-12.6f\n", nodes,
                report.total_seconds, report.comm_seconds,
                report.postprocess_seconds);
  }
  std::printf("\nSmall graphs stop scaling once communication and "
              "postProcess outweigh per-node work (paper Fig. 6/7, "
              "road_usa).\n");
  return 0;
}
