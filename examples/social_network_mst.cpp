// Scenario: hierarchical clustering of a social/web network.
//
// The MST is the backbone of single-linkage clustering: cutting its k-1
// heaviest edges yields the k clusters. This example builds a power-law
// "social web" graph (hub users + local communities), runs MND-MST across
// 8 simulated nodes with CPU+GPU devices, then reports the clusters
// obtained by cutting the heaviest MST edges.
//
//   ./social_network_mst [users] [follows] [clusters]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "graph/generators.hpp"
#include "graph/reference_mst.hpp"
#include "graph/union_find.hpp"
#include "util/rng.hpp"
#include "mst/mnd_mst.hpp"

int main(int argc, char** argv) {
  using namespace mnd;
  graph::WebGraphParams params;
  params.n = static_cast<graph::VertexId>(argc > 1 ? std::atoi(argv[1])
                                                   : 20000);
  params.target_edges =
      static_cast<std::size_t>(argc > 2 ? std::atoi(argv[2]) : 200000);
  params.hub_fraction = 0.08;  // influencers
  params.num_hubs = 24;
  params.seed = 2026;
  const std::size_t k =
      static_cast<std::size_t>(argc > 3 ? std::atoi(argv[3]) : 8);

  graph::EdgeList generated = graph::web_graph(params);
  // Tie strength: ties inside a community (a block of crawl-adjacent
  // users) are strong (light edges); ties crossing communities — long
  // hops and hub follows — are weak (heavy). Single-linkage clustering on
  // the MST then recovers the community structure.
  graph::EdgeList network(generated.num_vertices());
  mnd::Rng noise(11);
  const graph::VertexId block = params.n / static_cast<graph::VertexId>(k);
  for (const auto& e : generated.edges()) {
    const bool same_community = (e.u / block) == (e.v / block);
    const graph::Weight w =
        (same_community ? 100 : 100000) +
        static_cast<graph::Weight>(noise.next_below(100));
    network.add_edge(e.u, e.v, w);
  }
  std::printf("social network: %u users, %zu weighted ties\n",
              network.num_vertices(), network.num_edges());

  mst::MndMstOptions options;
  options.num_nodes = 8;
  options.engine.use_gpu = true;  // hybrid CPU+GPU nodes
  const auto report = mst::run_mnd_mst(network, options);
  const auto validation =
      graph::validate_spanning_forest(network, report.forest.edges);
  if (!validation.ok) {
    std::printf("validation failed: %s\n", validation.error.c_str());
    return 1;
  }
  std::printf("MST backbone: %zu edges, virtual time %.6fs "
              "(GPU share %.0f%%)\n",
              report.forest.edges.size(), report.total_seconds,
              100.0 * report.traces[0].gpu_share);

  // Single-linkage clustering: drop the k-1 heaviest forest edges.
  std::vector<graph::EdgeId> forest = report.forest.edges;
  std::sort(forest.begin(), forest.end(),
            [&](graph::EdgeId a, graph::EdgeId b) {
              return graph::edge_less(network.edge(a), network.edge(b));
            });
  const std::size_t keep =
      forest.size() > k - 1 ? forest.size() - (k - 1) : 0;
  graph::UnionFind clusters(network.num_vertices());
  for (std::size_t i = 0; i < keep; ++i) {
    const auto& e = network.edge(forest[i]);
    clusters.unite(e.u, e.v);
  }
  // Report the largest clusters.
  std::vector<std::size_t> sizes;
  for (graph::VertexId v = 0; v < network.num_vertices(); ++v) {
    if (clusters.find(v) == v) sizes.push_back(clusters.component_size(v));
  }
  std::sort(sizes.rbegin(), sizes.rend());
  std::printf("single-linkage clusters (k=%zu): sizes", k);
  for (std::size_t i = 0; i < std::min<std::size_t>(sizes.size(), k); ++i) {
    std::printf(" %zu", sizes[i]);
  }
  std::printf("\n");
  return 0;
}
