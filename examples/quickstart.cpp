// Quickstart: build a graph, run MND-MST on a simulated 4-node cluster,
// validate against exact Kruskal, and inspect the virtual-time report.
//
//   ./quickstart [vertices] [edges]
#include <cstdio>
#include <cstdlib>

#include "graph/generators.hpp"
#include "graph/reference_mst.hpp"
#include "mst/mnd_mst.hpp"

int main(int argc, char** argv) {
  using namespace mnd;
  const auto vertices =
      static_cast<graph::VertexId>(argc > 1 ? std::atoi(argv[1]) : 2000);
  const auto edges =
      static_cast<std::size_t>(argc > 2 ? std::atoi(argv[2]) : 10000);

  // 1. Make (or load — see graph/io.hpp) an undirected weighted graph.
  const graph::EdgeList input = graph::erdos_renyi(vertices, edges, /*seed=*/7);
  std::printf("input: %u vertices, %zu edges\n", input.num_vertices(),
              input.num_edges());

  // 2. Configure the run: 4 simulated nodes, defaults everywhere else
  //    (AMD-cluster network model, CPU-only, group size 4).
  mst::MndMstOptions options;
  options.num_nodes = 4;

  // 3. Run the distributed algorithm.
  const mst::MndMstReport report = mst::run_mnd_mst(input, options);
  std::printf("forest: %zu edges, total weight %llu, %zu component(s)\n",
              report.forest.edges.size(),
              static_cast<unsigned long long>(report.forest.total_weight),
              report.forest.num_components);
  std::printf("virtual time: total %.6fs (comm %.6fs, indComp %.6fs, "
              "merge %.6fs, postProcess %.6fs)\n",
              report.total_seconds, report.comm_seconds,
              report.indcomp_seconds, report.merge_seconds,
              report.postprocess_seconds);

  // 4. Verify optimality against single-machine Kruskal.
  const auto validation =
      graph::validate_spanning_forest(input, report.forest.edges);
  if (!validation.ok) {
    std::printf("VALIDATION FAILED: %s\n", validation.error.c_str());
    return 1;
  }
  std::printf("validated: forest matches the exact minimum spanning "
              "forest\n");
  return 0;
}
