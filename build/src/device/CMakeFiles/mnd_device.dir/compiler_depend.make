# Empty compiler generated dependencies file for mnd_device.
# This may be replaced when dependencies are built.
