file(REMOVE_RECURSE
  "CMakeFiles/mnd_device.dir/calibration.cpp.o"
  "CMakeFiles/mnd_device.dir/calibration.cpp.o.d"
  "CMakeFiles/mnd_device.dir/device.cpp.o"
  "CMakeFiles/mnd_device.dir/device.cpp.o.d"
  "libmnd_device.a"
  "libmnd_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnd_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
