file(REMOVE_RECURSE
  "libmnd_device.a"
)
