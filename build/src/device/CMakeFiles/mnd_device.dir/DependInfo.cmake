
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/device/calibration.cpp" "src/device/CMakeFiles/mnd_device.dir/calibration.cpp.o" "gcc" "src/device/CMakeFiles/mnd_device.dir/calibration.cpp.o.d"
  "/root/repo/src/device/device.cpp" "src/device/CMakeFiles/mnd_device.dir/device.cpp.o" "gcc" "src/device/CMakeFiles/mnd_device.dir/device.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mnd_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mnd_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
