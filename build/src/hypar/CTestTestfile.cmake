# CMake generated Testfile for 
# Source directory: /root/repo/src/hypar
# Build directory: /root/repo/build/src/hypar
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
