# Empty compiler generated dependencies file for mnd_hypar.
# This may be replaced when dependencies are built.
