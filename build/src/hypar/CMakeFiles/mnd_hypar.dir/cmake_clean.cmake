file(REMOVE_RECURSE
  "CMakeFiles/mnd_hypar.dir/engine.cpp.o"
  "CMakeFiles/mnd_hypar.dir/engine.cpp.o.d"
  "CMakeFiles/mnd_hypar.dir/ghost.cpp.o"
  "CMakeFiles/mnd_hypar.dir/ghost.cpp.o.d"
  "CMakeFiles/mnd_hypar.dir/partition.cpp.o"
  "CMakeFiles/mnd_hypar.dir/partition.cpp.o.d"
  "libmnd_hypar.a"
  "libmnd_hypar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnd_hypar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
