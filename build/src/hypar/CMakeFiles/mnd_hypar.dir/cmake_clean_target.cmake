file(REMOVE_RECURSE
  "libmnd_hypar.a"
)
