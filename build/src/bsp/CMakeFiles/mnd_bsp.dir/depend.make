# Empty dependencies file for mnd_bsp.
# This may be replaced when dependencies are built.
