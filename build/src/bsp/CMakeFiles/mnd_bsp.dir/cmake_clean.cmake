file(REMOVE_RECURSE
  "CMakeFiles/mnd_bsp.dir/msf.cpp.o"
  "CMakeFiles/mnd_bsp.dir/msf.cpp.o.d"
  "libmnd_bsp.a"
  "libmnd_bsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnd_bsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
