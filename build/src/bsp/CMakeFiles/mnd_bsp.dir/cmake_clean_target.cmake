file(REMOVE_RECURSE
  "libmnd_bsp.a"
)
