file(REMOVE_RECURSE
  "CMakeFiles/mnd_graph.dir/csr.cpp.o"
  "CMakeFiles/mnd_graph.dir/csr.cpp.o.d"
  "CMakeFiles/mnd_graph.dir/datasets.cpp.o"
  "CMakeFiles/mnd_graph.dir/datasets.cpp.o.d"
  "CMakeFiles/mnd_graph.dir/edge_list.cpp.o"
  "CMakeFiles/mnd_graph.dir/edge_list.cpp.o.d"
  "CMakeFiles/mnd_graph.dir/generators.cpp.o"
  "CMakeFiles/mnd_graph.dir/generators.cpp.o.d"
  "CMakeFiles/mnd_graph.dir/io.cpp.o"
  "CMakeFiles/mnd_graph.dir/io.cpp.o.d"
  "CMakeFiles/mnd_graph.dir/reference_mst.cpp.o"
  "CMakeFiles/mnd_graph.dir/reference_mst.cpp.o.d"
  "CMakeFiles/mnd_graph.dir/traversal.cpp.o"
  "CMakeFiles/mnd_graph.dir/traversal.cpp.o.d"
  "libmnd_graph.a"
  "libmnd_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnd_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
