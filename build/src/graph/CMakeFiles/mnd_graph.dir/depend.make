# Empty dependencies file for mnd_graph.
# This may be replaced when dependencies are built.
