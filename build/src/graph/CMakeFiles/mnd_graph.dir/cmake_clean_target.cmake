file(REMOVE_RECURSE
  "libmnd_graph.a"
)
