
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simcluster/cluster.cpp" "src/simcluster/CMakeFiles/mnd_simcluster.dir/cluster.cpp.o" "gcc" "src/simcluster/CMakeFiles/mnd_simcluster.dir/cluster.cpp.o.d"
  "/root/repo/src/simcluster/communicator.cpp" "src/simcluster/CMakeFiles/mnd_simcluster.dir/communicator.cpp.o" "gcc" "src/simcluster/CMakeFiles/mnd_simcluster.dir/communicator.cpp.o.d"
  "/root/repo/src/simcluster/virtual_clock.cpp" "src/simcluster/CMakeFiles/mnd_simcluster.dir/virtual_clock.cpp.o" "gcc" "src/simcluster/CMakeFiles/mnd_simcluster.dir/virtual_clock.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mnd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
