file(REMOVE_RECURSE
  "libmnd_simcluster.a"
)
