# Empty compiler generated dependencies file for mnd_simcluster.
# This may be replaced when dependencies are built.
