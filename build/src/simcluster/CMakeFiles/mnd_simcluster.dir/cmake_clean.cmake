file(REMOVE_RECURSE
  "CMakeFiles/mnd_simcluster.dir/cluster.cpp.o"
  "CMakeFiles/mnd_simcluster.dir/cluster.cpp.o.d"
  "CMakeFiles/mnd_simcluster.dir/communicator.cpp.o"
  "CMakeFiles/mnd_simcluster.dir/communicator.cpp.o.d"
  "CMakeFiles/mnd_simcluster.dir/virtual_clock.cpp.o"
  "CMakeFiles/mnd_simcluster.dir/virtual_clock.cpp.o.d"
  "libmnd_simcluster.a"
  "libmnd_simcluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnd_simcluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
