file(REMOVE_RECURSE
  "libmnd_util.a"
)
