file(REMOVE_RECURSE
  "CMakeFiles/mnd_util.dir/logging.cpp.o"
  "CMakeFiles/mnd_util.dir/logging.cpp.o.d"
  "CMakeFiles/mnd_util.dir/rng.cpp.o"
  "CMakeFiles/mnd_util.dir/rng.cpp.o.d"
  "CMakeFiles/mnd_util.dir/stats.cpp.o"
  "CMakeFiles/mnd_util.dir/stats.cpp.o.d"
  "CMakeFiles/mnd_util.dir/table.cpp.o"
  "CMakeFiles/mnd_util.dir/table.cpp.o.d"
  "CMakeFiles/mnd_util.dir/thread_pool.cpp.o"
  "CMakeFiles/mnd_util.dir/thread_pool.cpp.o.d"
  "libmnd_util.a"
  "libmnd_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnd_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
