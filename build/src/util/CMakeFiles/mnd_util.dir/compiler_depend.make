# Empty compiler generated dependencies file for mnd_util.
# This may be replaced when dependencies are built.
