file(REMOVE_RECURSE
  "libmnd_mst.a"
)
