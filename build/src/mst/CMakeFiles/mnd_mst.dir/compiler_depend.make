# Empty compiler generated dependencies file for mnd_mst.
# This may be replaced when dependencies are built.
