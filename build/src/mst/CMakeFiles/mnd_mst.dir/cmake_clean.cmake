file(REMOVE_RECURSE
  "CMakeFiles/mnd_mst.dir/mnd_mst.cpp.o"
  "CMakeFiles/mnd_mst.dir/mnd_mst.cpp.o.d"
  "libmnd_mst.a"
  "libmnd_mst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnd_mst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
