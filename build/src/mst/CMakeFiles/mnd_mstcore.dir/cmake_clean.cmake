file(REMOVE_RECURSE
  "CMakeFiles/mnd_mstcore.dir/comp_graph.cpp.o"
  "CMakeFiles/mnd_mstcore.dir/comp_graph.cpp.o.d"
  "CMakeFiles/mnd_mstcore.dir/local_boruvka.cpp.o"
  "CMakeFiles/mnd_mstcore.dir/local_boruvka.cpp.o.d"
  "libmnd_mstcore.a"
  "libmnd_mstcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnd_mstcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
