file(REMOVE_RECURSE
  "libmnd_mstcore.a"
)
