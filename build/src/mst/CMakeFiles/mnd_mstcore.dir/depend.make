# Empty dependencies file for mnd_mstcore.
# This may be replaced when dependencies are built.
