# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_reference_mst[1]_include.cmake")
include("/root/repo/build/tests/test_simcluster[1]_include.cmake")
include("/root/repo/build/tests/test_device[1]_include.cmake")
include("/root/repo/build/tests/test_compgraph[1]_include.cmake")
include("/root/repo/build/tests/test_boruvka[1]_include.cmake")
include("/root/repo/build/tests/test_hypar[1]_include.cmake")
include("/root/repo/build/tests/test_mnd_mst[1]_include.cmake")
include("/root/repo/build/tests/test_bsp[1]_include.cmake")
include("/root/repo/build/tests/test_sweep[1]_include.cmake")
include("/root/repo/build/tests/test_bsp_engine[1]_include.cmake")
include("/root/repo/build/tests/test_paper_claims[1]_include.cmake")
