file(REMOVE_RECURSE
  "CMakeFiles/test_reference_mst.dir/reference_mst_test.cpp.o"
  "CMakeFiles/test_reference_mst.dir/reference_mst_test.cpp.o.d"
  "test_reference_mst"
  "test_reference_mst.pdb"
  "test_reference_mst[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reference_mst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
