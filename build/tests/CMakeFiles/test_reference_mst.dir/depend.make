# Empty dependencies file for test_reference_mst.
# This may be replaced when dependencies are built.
