file(REMOVE_RECURSE
  "CMakeFiles/test_hypar.dir/hypar_test.cpp.o"
  "CMakeFiles/test_hypar.dir/hypar_test.cpp.o.d"
  "test_hypar"
  "test_hypar.pdb"
  "test_hypar[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hypar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
