# Empty compiler generated dependencies file for test_hypar.
# This may be replaced when dependencies are built.
