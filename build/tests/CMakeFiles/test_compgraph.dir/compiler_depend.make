# Empty compiler generated dependencies file for test_compgraph.
# This may be replaced when dependencies are built.
