file(REMOVE_RECURSE
  "CMakeFiles/test_compgraph.dir/compgraph_test.cpp.o"
  "CMakeFiles/test_compgraph.dir/compgraph_test.cpp.o.d"
  "test_compgraph"
  "test_compgraph.pdb"
  "test_compgraph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
