file(REMOVE_RECURSE
  "CMakeFiles/test_bsp_engine.dir/bsp_engine_test.cpp.o"
  "CMakeFiles/test_bsp_engine.dir/bsp_engine_test.cpp.o.d"
  "test_bsp_engine"
  "test_bsp_engine.pdb"
  "test_bsp_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bsp_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
