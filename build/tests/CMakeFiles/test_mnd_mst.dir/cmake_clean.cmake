file(REMOVE_RECURSE
  "CMakeFiles/test_mnd_mst.dir/mnd_mst_test.cpp.o"
  "CMakeFiles/test_mnd_mst.dir/mnd_mst_test.cpp.o.d"
  "test_mnd_mst"
  "test_mnd_mst.pdb"
  "test_mnd_mst[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mnd_mst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
