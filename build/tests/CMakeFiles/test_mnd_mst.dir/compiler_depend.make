# Empty compiler generated dependencies file for test_mnd_mst.
# This may be replaced when dependencies are built.
