# Empty compiler generated dependencies file for fig6_cpu_scalability.
# This may be replaced when dependencies are built.
