# Empty compiler generated dependencies file for fig8_gpu_scalability.
# This may be replaced when dependencies are built.
