# Empty dependencies file for fig4_internode_scalability.
# This may be replaced when dependencies are built.
