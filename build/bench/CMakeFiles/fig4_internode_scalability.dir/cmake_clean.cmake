file(REMOVE_RECURSE
  "CMakeFiles/fig4_internode_scalability.dir/fig4_internode_scalability.cpp.o"
  "CMakeFiles/fig4_internode_scalability.dir/fig4_internode_scalability.cpp.o.d"
  "fig4_internode_scalability"
  "fig4_internode_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_internode_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
