file(REMOVE_RECURSE
  "CMakeFiles/fig7_phase_breakdown.dir/fig7_phase_breakdown.cpp.o"
  "CMakeFiles/fig7_phase_breakdown.dir/fig7_phase_breakdown.cpp.o.d"
  "fig7_phase_breakdown"
  "fig7_phase_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_phase_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
