file(REMOVE_RECURSE
  "CMakeFiles/fig5_comm_breakdown.dir/fig5_comm_breakdown.cpp.o"
  "CMakeFiles/fig5_comm_breakdown.dir/fig5_comm_breakdown.cpp.o.d"
  "fig5_comm_breakdown"
  "fig5_comm_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_comm_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
