file(REMOVE_RECURSE
  "CMakeFiles/social_network_mst.dir/social_network_mst.cpp.o"
  "CMakeFiles/social_network_mst.dir/social_network_mst.cpp.o.d"
  "social_network_mst"
  "social_network_mst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_network_mst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
