# Empty compiler generated dependencies file for social_network_mst.
# This may be replaced when dependencies are built.
