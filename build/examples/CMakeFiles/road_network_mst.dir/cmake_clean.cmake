file(REMOVE_RECURSE
  "CMakeFiles/road_network_mst.dir/road_network_mst.cpp.o"
  "CMakeFiles/road_network_mst.dir/road_network_mst.cpp.o.d"
  "road_network_mst"
  "road_network_mst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/road_network_mst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
