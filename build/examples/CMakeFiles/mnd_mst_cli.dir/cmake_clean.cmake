file(REMOVE_RECURSE
  "CMakeFiles/mnd_mst_cli.dir/mnd_mst_cli.cpp.o"
  "CMakeFiles/mnd_mst_cli.dir/mnd_mst_cli.cpp.o.d"
  "mnd_mst_cli"
  "mnd_mst_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnd_mst_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
