# Empty dependencies file for mnd_mst_cli.
# This may be replaced when dependencies are built.
