# Empty compiler generated dependencies file for hypar_components.
# This may be replaced when dependencies are built.
