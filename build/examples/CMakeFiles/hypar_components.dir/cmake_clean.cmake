file(REMOVE_RECURSE
  "CMakeFiles/hypar_components.dir/hypar_components.cpp.o"
  "CMakeFiles/hypar_components.dir/hypar_components.cpp.o.d"
  "hypar_components"
  "hypar_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypar_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
